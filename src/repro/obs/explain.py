"""Decision-provenance analysis — the engine behind ``repro explain``.

Everything here is a pure function of a parsed trial archive
(:mod:`repro.obs.archive`), so the explain output inherits the archive's
determinism contract for free: same archive bytes in, same report,
landscape and calibration bytes out, regardless of how many jobs
produced the archive.

Three products, matching the three questions a tuning run leaves open:

* :func:`explain` — *why did the winner win?*  Ranks the measured
  records, then runs winner-vs-runner-up differential attribution
  (:func:`repro.obs.attribution.differential`) over their archived
  clean-launch :class:`~repro.obs.counters.CounterSet`\\ s.
* :func:`landscape_csv` / :func:`landscape_specs` — *what does the
  search space look like?*  A flat CSV of every record plus one
  Vega-Lite heatmap spec per ``(RX, RY)`` slice of the
  ``(TX, TY)`` plane — the text-based-figure pattern the paper-artifact
  pipeline reuses.
* :func:`calibrate` — *can the models be trusted?*  Spearman rank
  correlation and top-k regret of predicted-vs-measured rates for both
  the :class:`~repro.tuning.perfmodel.PaperModel` prediction and the
  codegen-time :class:`~repro.analysis.estimate.PerfEstimate`, exported
  as the ``CALIBRATION_GAUGES`` of :mod:`repro.obs.export`.
"""

from __future__ import annotations

import io
import json
import math
from dataclasses import dataclass
from typing import Any, Sequence

from repro.obs.archive import ArchiveRecord
from repro.obs.attribution import DifferentialReport, differential
from repro.obs.metrics import MetricsRegistry

#: How many predicted-best configs top-k regret considers by default.
DEFAULT_TOP_K = 3

#: Columns of :func:`landscape_csv`, in order.
CSV_COLUMNS: tuple[str, ...] = (
    "tx", "ty", "rx", "ry", "label", "status", "mpoints_per_s",
    "predicted", "estimate_mpoints_per_s", "attempts", "faults", "replayed",
)


# -- ranking -----------------------------------------------------------------


def measured_ranking(records: Sequence[ArchiveRecord]) -> list[ArchiveRecord]:
    """Measured records, best rate first.

    Ties break on the config tuple so the ranking — and therefore the
    winner/runner-up choice — is a pure function of the archive, exactly
    like the tuners' own stable sort.
    """
    return sorted(
        (r for r in records if r.measured),
        key=lambda r: (-r.mpoints_per_s, r.config),
    )


# -- rank statistics ---------------------------------------------------------


def _average_ranks(values: Sequence[float]) -> list[float]:
    """1-based ranks with ties sharing their average rank."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        shared = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = shared
        i = j + 1
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float | None:
    """Spearman rank correlation (average ranks on ties).

    ``None`` when undefined: fewer than two pairs, or either series
    constant (zero rank variance).
    """
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    n = len(xs)
    if n < 2:
        return None
    rx, ry = _average_ranks(xs), _average_ranks(ys)
    mx, my = sum(rx) / n, sum(ry) / n
    cov = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    vx = sum((a - mx) ** 2 for a in rx)
    vy = sum((b - my) ** 2 for b in ry)
    if vx == 0.0 or vy == 0.0:
        return None
    return cov / math.sqrt(vx * vy)


def topk_regret(
    pairs: Sequence[tuple[float, float]], k: int = DEFAULT_TOP_K
) -> float | None:
    """How much rate trusting the model's top-k would leave on the table.

    ``pairs`` is ``(predicted, measured)`` per config.  The regret is
    ``(best - best_among_predicted_top_k) / best`` — 0.0 when the true
    winner ranks inside the model's top k, approaching 1.0 as the model
    shortlists only slow configs.  ``None`` for an empty series or a
    zero best rate.
    """
    if not pairs or k < 1:
        return None
    best = max(m for _p, m in pairs)
    if best <= 0.0:
        return None
    shortlist = sorted(pairs, key=lambda pm: (-pm[0], pm[1]))[:k]
    best_in_k = max(m for _p, m in shortlist)
    return (best - best_in_k) / best


# -- calibration -------------------------------------------------------------


def _estimate_rate(record: ArchiveRecord) -> float | None:
    est = record.estimate
    if not est:
        return None
    rate = est.get("mpoints_per_s")
    return float(rate) if isinstance(rate, (int, float)) else None


def calibrate(
    records: Sequence[ArchiveRecord], *, k: int = DEFAULT_TOP_K
) -> dict[str, dict[str, Any]]:
    """Predicted-vs-measured calibration for both models.

    Returns ``{"model": {...}, "estimate": {...}}`` where each entry
    carries the scatter pairs (``predicted`` / ``measured`` / ``label``),
    the Spearman rank correlation and the top-k regret.  Only measured
    records with the respective prediction participate.
    """
    out: dict[str, dict[str, Any]] = {}
    measured = [r for r in records if r.measured]
    for name, score in (
        ("model", lambda r: r.predicted),
        ("estimate", _estimate_rate),
    ):
        scatter = [
            {
                "label": r.label,
                "predicted": float(score(r)),  # type: ignore[arg-type]
                "measured": r.mpoints_per_s,
            }
            for r in measured
            if score(r) is not None
        ]
        pairs = [(s["predicted"], s["measured"]) for s in scatter]
        out[name] = {
            "n": len(pairs),
            "k": k,
            "spearman": spearman(
                [p for p, _m in pairs], [m for _p, m in pairs]
            ),
            "topk_regret": topk_regret(pairs, k),
            "scatter": scatter,
        }
    return out


def calibration_registry(
    calibration: dict[str, dict[str, Any]]
) -> MetricsRegistry:
    """The calibration numbers as a metrics registry.

    Gauge names are the ``CALIBRATION_GAUGES`` registered in
    :mod:`repro.obs.export` beside the service gauges; undefined
    statistics (``None``) set no gauge at all — the exporters omit
    samples rather than invent values, mirroring the empty-histogram
    rule.
    """
    reg = MetricsRegistry()
    for name, stats in calibration.items():
        for stat, gauge in (("spearman", "rank_corr"), ("topk_regret", "topk_regret")):
            value = stats.get(stat)
            if value is not None:
                reg.gauge(f"{name}.{gauge}").set(float(value))
    return reg


# -- landscape export --------------------------------------------------------


def landscape_csv(records: Sequence[ArchiveRecord]) -> str:
    """Every archived record as one flat CSV (header + one row each).

    Empty cells mean "not applicable" (no prediction / the config never
    launched); ``faults`` joins the fault kinds with ``+`` so each cell
    stays a single token.  Rates serialize via ``repr`` — full float
    precision, so the CSV round-trips the archive exactly.
    """
    import csv

    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(CSV_COLUMNS)
    for r in records:
        est = _estimate_rate(r)
        writer.writerow([
            r.config[0], r.config[1], r.config[2], r.config[3],
            r.label, r.status,
            repr(r.mpoints_per_s) if r.measured else "",
            repr(r.predicted) if r.predicted is not None else "",
            repr(est) if est is not None else "",
            r.attempts,
            "+".join(r.faults),
            "1" if r.replayed else "0",
        ])
    return buf.getvalue()


def landscape_specs(
    records: Sequence[ArchiveRecord]
) -> dict[str, dict[str, Any]]:
    """One Vega-Lite heatmap spec per ``(RX, RY)`` slice.

    Keys are file stems (``landscape_rx{RX}_ry{RY}``); values are
    self-contained Vega-Lite v5 specs with inline data — measured
    MPoint/s as rect color over the ``(TX, TY)`` plane.  Slices with no
    measured point are skipped (a heatmap of nothing renders as an
    empty axis, which reads as a bug).
    """
    slices: dict[tuple[int, int], list[dict[str, Any]]] = {}
    for r in records:
        if not r.measured:
            continue
        tx, ty, rx, ry = r.config
        slices.setdefault((rx, ry), []).append(
            {"tx": tx, "ty": ty, "mpoints_per_s": r.mpoints_per_s}
        )
    specs: dict[str, dict[str, Any]] = {}
    for (rx, ry) in sorted(slices):
        values = sorted(
            slices[(rx, ry)], key=lambda v: (v["tx"], v["ty"])
        )
        specs[f"landscape_rx{rx}_ry{ry}"] = {
            "$schema": "https://vega.github.io/schema/vega-lite/v5.json",
            "description": (
                f"Measured MPoint/s over (TX, TY) at RX={rx}, RY={ry}"
            ),
            "data": {"values": values},
            "mark": "rect",
            "encoding": {
                "x": {"field": "tx", "type": "ordinal", "title": "TX"},
                "y": {"field": "ty", "type": "ordinal", "title": "TY"},
                "color": {
                    "field": "mpoints_per_s",
                    "type": "quantitative",
                    "title": "MPoint/s",
                },
            },
        }
    return specs


# -- the report --------------------------------------------------------------


@dataclass(frozen=True)
class ExplainReport:
    """Everything ``repro explain`` prints, as one object."""

    session: str | None
    total: int
    measured: int
    ranking: tuple[ArchiveRecord, ...]   #: measured records, best first
    diff: DifferentialReport | None      #: None with < 2 measured configs
    calibration: dict[str, dict[str, Any]]
    top: int

    @property
    def winner(self) -> ArchiveRecord | None:
        return self.ranking[0] if self.ranking else None

    def render(self) -> str:
        lines: list[str] = []
        head = f"{self.total} archived trial(s), {self.measured} measured"
        if self.session:
            head = f"session {self.session}: " + head
        lines.append(head)
        for i, r in enumerate(self.ranking[: self.top], start=1):
            pred = (
                f" (model predicted {r.predicted:,.1f})"
                if r.predicted is not None else ""
            )
            lines.append(
                f"  #{i} {r.label:<24s} {r.mpoints_per_s:>10,.1f} MPoint/s"
                f"{pred}"
            )
        if self.diff is not None:
            lines.append("")
            lines.append(self.diff.render())
        lines.append("")
        for name, stats in self.calibration.items():
            rho = stats["spearman"]
            regret = stats["topk_regret"]
            lines.append(
                f"{name} calibration over {stats['n']} config(s): "
                + (
                    f"spearman {rho:+.3f}" if rho is not None
                    else "spearman undefined"
                )
                + ", "
                + (
                    f"top-{stats['k']} regret {regret:.1%}"
                    if regret is not None else "regret undefined"
                )
            )
        return "\n".join(lines)

    def to_json_obj(self) -> dict[str, Any]:
        return {
            "session": self.session,
            "total": self.total,
            "measured": self.measured,
            "ranking": [r.to_obj() for r in self.ranking[: self.top]],
            "differential": (
                self.diff.to_json_obj() if self.diff is not None else None
            ),
            "calibration": self.calibration,
        }


def explain(
    header: dict[str, Any],
    records: Sequence[ArchiveRecord],
    *,
    top: int = DEFAULT_TOP_K,
) -> ExplainReport:
    """Build the full explain report from one parsed archive.

    The differential runs over the winner's and runner-up's *archived*
    clean-launch counters — no resimulation — and is omitted (not
    errored) when fewer than two measured records or either counter set
    is missing.
    """
    ranking = measured_ranking(records)
    diff: DifferentialReport | None = None
    if len(ranking) >= 2:
        winner, runner_up = ranking[0], ranking[1]
        if winner.counters and runner_up.counters:
            diff = differential(
                winner.counters,
                runner_up.counters,
                winner_label=winner.label,
                runner_up_label=runner_up.label,
                winner_rate=winner.mpoints_per_s,
                runner_up_rate=runner_up.mpoints_per_s,
            )
    return ExplainReport(
        session=header.get("session"),
        total=len(records),
        measured=len(ranking),
        ranking=tuple(ranking),
        diff=diff,
        calibration=calibrate(records, k=top),
        top=top,
    )


def dump_landscape(
    records: Sequence[ArchiveRecord], out_dir: str
) -> list[str]:
    """Write the CSV and every Vega-Lite spec under ``out_dir``.

    Returns the written file names (sorted, relative to ``out_dir``).
    Specs serialize with sorted keys and a trailing newline so repeated
    exports of the same archive are byte-identical.
    """
    from pathlib import Path

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written = ["landscape.csv"]
    (out / "landscape.csv").write_text(landscape_csv(records))
    for stem, spec in landscape_specs(records).items():
        name = f"{stem}.vl.json"
        (out / name).write_text(
            json.dumps(spec, sort_keys=True, indent=2) + "\n"
        )
        written.append(name)
    return sorted(written)
