"""Span tracer — the simulated GPU's nvprof/Nsight timeline recorder.

Two clocks coexist in one trace:

* the **host track** records wall-clock spans (tuner trials, experiment
  drivers) measured with ``time.perf_counter``;
* the **device track** records *simulated* time in cycles.  The timing
  model is analytic — it never steps through time — so device spans are
  reconstructed post-hoc from a :class:`~repro.gpusim.timing.TimingResult`
  (see :mod:`repro.obs.simtrace`) and placed on a monotonically advancing
  cycle cursor, one launch after another.

Tracing is **off by default** and costs one :class:`~contextvars.ContextVar`
lookup per instrumentation point when disabled (see
``tests/test_obs_tracer.py::test_disabled_overhead``).  Enable it with::

    from repro.obs import Tracer, tracing

    with tracing() as tracer:
        simulate(plan, "gtx580", (512, 512, 256))
    write_chrome_trace(tracer, "trace.json")

The active tracer is contextvar-scoped, so concurrent tuning runs (e.g.
thread pools) each see their own tracer rather than a shared global.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, ContextManager, Iterator

from repro.obs.metrics import MetricsRegistry

#: Track (Chrome-trace "process") names.
HOST_TRACK = "host"
DEVICE_TRACK = "device"


@dataclass
class Span:
    """One recorded interval.

    ``begin``/``dur`` are microseconds since trace start on the host
    track and *cycles* since trace start on the device track.  ``tid``
    names the timeline lane inside the track (e.g. ``"waves"``,
    ``"component:mem"``); ``depth`` records host-span nesting for the
    text report.  ``instant`` spans have zero duration by construction.
    """

    name: str
    cat: str
    track: str
    tid: str
    begin: float
    dur: float
    depth: int = 0
    args: dict[str, Any] = field(default_factory=dict)
    instant: bool = False


class Tracer:
    """Collects spans and metrics for one profiling session.

    Parameters
    ----------
    plane_limit:
        Per-plane device spans emitted per scheduling wave (planes within
        a wave are identical under the analytic model, so a small sample
        plus the wave-level aggregate loses nothing; the wave span's
        ``planes`` arg records the true count).
    """

    def __init__(self, *, plane_limit: int = 4) -> None:
        self.spans: list[Span] = []
        self.metrics = MetricsRegistry()
        self.plane_limit = plane_limit
        self._t0 = time.perf_counter()
        self._sim_cursor = 0.0
        self._host_depth = 0

    # -- host (wall clock) ------------------------------------------------

    def _now_us(self) -> float:
        return (time.perf_counter() - self._t0) * 1e6

    def now_us(self) -> float:
        """Microseconds since trace start (the host track's clock).

        Public so callers stitching in externally timed intervals
        (:meth:`host_span_at`) can anchor them to this trace's origin.
        """
        return self._now_us()

    @contextmanager
    def span(self, name: str, cat: str, **args: Any) -> Iterator[Span]:
        """Record a wall-clock span around a ``with`` body.

        The yielded :class:`Span` is live: mutate ``span.args`` inside the
        body to attach results (measured rate, rejection reason, ...).
        """
        sp = Span(
            name=name, cat=cat, track=HOST_TRACK, tid="main",
            begin=self._now_us(), dur=0.0, depth=self._host_depth, args=args,
        )
        self.spans.append(sp)
        self._host_depth += 1
        try:
            yield sp
        finally:
            self._host_depth -= 1
            sp.dur = self._now_us() - sp.begin

    def instant(self, name: str, cat: str, **args: Any) -> Span:
        """Record a zero-duration host marker (e.g. a rejected config)."""
        sp = Span(
            name=name, cat=cat, track=HOST_TRACK, tid="main",
            begin=self._now_us(), dur=0.0, depth=self._host_depth,
            args=args, instant=True,
        )
        self.spans.append(sp)
        return sp

    def host_span_at(
        self, name: str, cat: str, tid: str, begin_us: float, dur_us: float,
        **args: Any,
    ) -> Span:
        """Record a host-track span at an explicit interval and lane.

        Used for work that happened *outside* this process — the parallel
        tuning engine replays each worker's chunk timings onto a
        ``worker:<n>`` lane after the pool joins (a forked worker cannot
        append to the parent's tracer directly).
        """
        sp = Span(
            name=name, cat=cat, track=HOST_TRACK, tid=tid,
            begin=max(0.0, begin_us), dur=max(0.0, dur_us), args=args,
        )
        self.spans.append(sp)
        return sp

    # -- device (simulated cycles) ----------------------------------------

    def alloc_cycles(self, cycles: float) -> float:
        """Reserve ``[base, base + cycles)`` on the device timeline.

        Successive simulated launches land back to back, which is what
        makes a tuning sweep render as one continuous device timeline.
        """
        base = self._sim_cursor
        self._sim_cursor += cycles
        return base

    def device_span(
        self, name: str, cat: str, tid: str, begin: float, dur: float,
        **args: Any,
    ) -> Span:
        """Record one device-track span at an explicit cycle interval."""
        sp = Span(
            name=name, cat=cat, track=DEVICE_TRACK, tid=tid,
            begin=begin, dur=dur, args=args,
        )
        self.spans.append(sp)
        return sp

    # -- queries -----------------------------------------------------------

    def device_spans(self, cat: str | None = None) -> list[Span]:
        """Device-track spans, optionally filtered by category."""
        return [
            s for s in self.spans
            if s.track == DEVICE_TRACK and (cat is None or s.cat == cat)
        ]

    def host_spans(self, cat: str | None = None) -> list[Span]:
        """Host-track spans, optionally filtered by category."""
        return [
            s for s in self.spans
            if s.track == HOST_TRACK and (cat is None or s.cat == cat)
        ]


#: The contextvar consulted by every instrumentation point.  ``None``
#: (the default) means tracing is disabled and the hook is a no-op.
_ACTIVE: ContextVar[Tracer | None] = ContextVar("repro_obs_tracer", default=None)


def current_tracer() -> Tracer | None:
    """The tracer active in this context, or ``None`` when disabled."""
    return _ACTIVE.get()


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the active tracer's registry (no-op when untraced).

    The service-gauge hook (``tune.inflight``, ``cache.hit_ratio``, ...):
    the engines call this at state transitions and the cost with tracing
    off stays one contextvar lookup, preserving the disabled-path bound.
    """
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.metrics.gauge(name).set(value)


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Enable tracing for the ``with`` body; yields the active tracer."""
    tracer = tracer if tracer is not None else Tracer()
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


def disable_tracing_in_process() -> None:
    """Force tracing off in this process (pool-worker initializer hook).

    A forked worker inherits the parent's active tracer through the
    contextvar; spans it would record die with the worker, so the
    parallel engine disables tracing up front and the parent re-emits
    worker timings itself (:meth:`Tracer.host_span_at`).
    """
    _ACTIVE.set(None)


def maybe_span(
    tracer: Tracer | None, name: str, cat: str, **args: Any
) -> ContextManager[Span | None]:
    """A host span when tracing is on, an inert context otherwise.

    Lets instrumented call sites keep a single code path::

        with maybe_span(tracer, label, "tune.trial") as sp:
            report = executor.run(...)
            if sp is not None:
                sp.args["mpoints_per_s"] = report.mpoints_per_s
    """
    if tracer is None:
        return nullcontext()
    return tracer.span(name, cat, **args)
