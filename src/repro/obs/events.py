"""Structured event stream — the live telemetry plane of the tuner.

The tracer (:mod:`repro.obs.tracer`) and the trial journal
(:mod:`repro.tuning.robust`) are both *post-hoc*: spans become visible
when a trace is exported, journal records when a session is resumed.
This module adds the third plane — a schema-versioned stream of small
structured events, appended (flushed + fsynced, like the journal) as a
campaign runs, so long tuning sessions and the future ``repro serve``
daemon can be observed *while* they run (``repro top`` tails it).

Design contracts, in decreasing order of importance:

1. **No-op by default.**  With no sink installed every emission point is
   one :class:`~contextvars.ContextVar` lookup, mirroring the tracer's
   disabled path (overhead pinned by
   ``tests/test_obs_events.py::test_disabled_overhead``).  ``faults=None``
   plus no sink means zero perturbation of any simulated number —
   ``repro bench diff`` stays bit-identical with the event layer merged.
2. **Determinism.**  Events carry no wall-clock timestamps, pids or
   worker identities — only a per-sink sequence number and payload
   fields that are pure functions of the (seeded) campaign.  Trial-plane
   events are derived from completed
   :class:`~repro.tuning.evaluator.TrialOutcome` records and emitted by
   the search loops **in input order**, never live from worker
   processes, so the stream file of a ``--jobs 4`` storm campaign is
   byte-identical to the ``--jobs 1`` one — the same guarantee the
   PR 5 journal gives, extended to telemetry.
3. **Volatile events stay out of the stream.**  Engine-plane events
   (pool lifecycle, worker chunk completions) are real telemetry but not
   deterministic across job counts; the catalog marks them
   ``volatile`` and the JSONL sink drops them by default.  The flight
   recorder keeps them: crash forensics wants exactly that layer.

The stream file is JSONL: line 1 is a header binding the stream to the
schema version and session key; every further line is one event object
with sorted keys.  A process killed mid-append leaves at most one torn
final line, which :func:`read_events` tolerates.
"""

from __future__ import annotations

import json
import logging
import os
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

logger = logging.getLogger("repro.obs.events")

#: Version stamped into stream headers and crash reports — bump on
#: incompatible changes to the catalog or record layout.
EVENTS_SCHEMA_VERSION = 1

_STREAM_TOOL = "repro.obs.events"
_FLIGHT_TOOL = "repro.obs.flight"


class EventSchemaError(ValueError):
    """An event (or a stream document) violates the catalog/schema."""


@dataclass(frozen=True)
class EventSpec:
    """One catalog entry: an event name and its contract.

    ``volatile`` events describe engine internals (pool lifecycle,
    worker chunks) that legitimately differ between job counts; they are
    excluded from persistent streams by default so the stream keeps the
    jobs-count byte-identity guarantee.  ``fields`` documents the
    payload keys an emitter is expected to provide (extra keys are
    allowed; the catalog is a floor, not a straitjacket).
    """

    name: str
    doc: str
    fields: tuple[str, ...] = ()
    volatile: bool = False


#: The event catalog (mirrored as a table in docs/OBSERVABILITY.md).
EVENT_SPECS: tuple[EventSpec, ...] = (
    # -- session plane (repro.tuning.robust) ------------------------------
    EventSpec("session.start", "a resilient tuning session begins",
              ("session", "method")),
    EventSpec("session.tier_start", "one degradation-ladder tier begins",
              ("tier",)),
    EventSpec("session.tier_failed", "a tier produced no usable winner",
              ("tier", "error")),
    EventSpec("session.finished", "the session produced a winner",
              ("method", "best_config", "best_mpoints")),
    EventSpec("session.crash", "an unhandled error ended the session",
              ("error",)),
    # -- sweep plane (the three tuners) ------------------------------------
    EventSpec("sweep.start", "one tuner invocation begins",
              ("method", "device", "space_size")),
    EventSpec("sweep.finished", "one tuner invocation completed",
              ("method", "evaluated")),
    # -- trial plane (derived from TrialOutcome, input order) --------------
    EventSpec("trial.measured", "a configuration produced a usable rate",
              ("config", "mpoints_per_s", "attempts")),
    EventSpec("trial.rejected", "a configuration could not launch",
              ("config", "reason")),
    EventSpec("trial.quarantined", "retries exhausted; config excluded",
              ("config", "attempts", "faults")),
    EventSpec("trial.retried", "a trial needed more than one attempt",
              ("config", "retries")),
    EventSpec("trial.replayed", "a journaled outcome was reused, not re-run",
              ("config", "status")),
    # -- fault plane (repro.gpusim.faults) ---------------------------------
    EventSpec("fault.injected", "one injected fault fired (live contexts)",
              ("kind", "index")),
    EventSpec("fault.observed", "a fault kind touched a finished trial",
              ("config", "kind")),
    # -- cache plane (repro.tuning.cache) ----------------------------------
    EventSpec("cache.hit", "a tuning-cache lookup was served", ("key",)),
    EventSpec("cache.miss", "a tuning-cache lookup found nothing", ("key",)),
    EventSpec("cache.put", "a tuning result was persisted",
              ("key", "entries")),
    EventSpec("cache.merge", "concurrent writers' keys were adopted on put",
              ("adopted",)),
    # -- archive plane (repro.obs.archive) ---------------------------------
    EventSpec("archive.start", "a trial provenance archive opened",
              ("session",)),
    EventSpec("archive.finished", "the trial provenance archive is complete",
              ("records",)),
    # -- cluster plane (repro.cluster.resilient) ---------------------------
    EventSpec("cluster.run.start", "a resilient stepping campaign begins",
              ("session", "gpus", "steps")),
    EventSpec("cluster.run.finished", "the campaign completed all steps",
              ("steps", "gpus_alive")),
    EventSpec("cluster.exchange.retry", "a validated-corrupt halo exchange "
              "is being retried", ("step", "attempt", "error")),
    EventSpec("cluster.gpu.quarantined", "a GPU dropped out and left the fleet",
              ("step", "gpu")),
    EventSpec("cluster.redecompose", "surviving slabs were re-split over the "
              "smaller fleet", ("step", "gpus")),
    EventSpec("cluster.checkpoint.written", "an atomic grid snapshot was "
              "published", ("step",)),
    EventSpec("cluster.checkpoint.restored", "a campaign resumed from a "
              "snapshot", ("step",)),
    # -- engine plane (repro.tuning.parallel; volatile) --------------------
    EventSpec("pool.start", "a worker pool forked",
              ("workers",), volatile=True),
    EventSpec("pool.dispatch", "a batch was chunked across the pool",
              ("tasks", "configs"), volatile=True),
    EventSpec("pool.chunk", "one worker chunk completed",
              ("worker", "configs"), volatile=True),
    EventSpec("pool.stop", "the worker pool was torn down", (), volatile=True),
)

EVENT_CATALOG: dict[str, EventSpec] = {spec.name: spec for spec in EVENT_SPECS}


@dataclass(frozen=True)
class Event:
    """One emitted event: catalog name, per-sink sequence, payload.

    Frozen — an event is a record, not a builder.  ``fields`` is kept as
    a sorted tuple of pairs so events are hashable and their JSON form
    (:meth:`to_obj`) is key-stable, which is what makes two streams of
    the same campaign byte-comparable.
    """

    name: str
    seq: int
    fields: tuple[tuple[str, Any], ...] = ()

    @property
    def volatile(self) -> bool:
        spec = EVENT_CATALOG.get(self.name)
        return spec.volatile if spec is not None else False

    def to_obj(self) -> dict[str, Any]:
        obj: dict[str, Any] = {"event": self.name, "seq": self.seq}
        obj.update(self.fields)
        return obj

    @classmethod
    def from_obj(cls, obj: dict[str, Any]) -> "Event":
        if "event" not in obj or "seq" not in obj:
            raise EventSchemaError(
                f"event record needs 'event' and 'seq' keys: {obj!r}"
            )
        payload = tuple(sorted(
            (k, v) for k, v in obj.items() if k not in ("event", "seq")
        ))
        return cls(name=str(obj["event"]), seq=int(obj["seq"]), fields=payload)


def validate_event(obj: Any, *, path: str = "$") -> Event:
    """Validate one decoded stream record against the catalog.

    Checks the required keys, that the name is catalogued, and that the
    catalog's documented payload fields are present.  Returns the parsed
    :class:`Event`; raises :class:`EventSchemaError` naming ``path``.
    """
    if not isinstance(obj, dict):
        raise EventSchemaError(f"{path}: event must be an object, got {type(obj).__name__}")
    event = Event.from_obj(obj)
    spec = EVENT_CATALOG.get(event.name)
    if spec is None:
        raise EventSchemaError(f"{path}: unknown event {event.name!r}")
    present = {k for k, _ in event.fields}
    missing = [f for f in spec.fields if f not in present]
    if missing:
        raise EventSchemaError(
            f"{path}: event {event.name!r} missing field(s) {missing}"
        )
    if event.seq < 0:
        raise EventSchemaError(f"{path}: seq must be >= 0, got {event.seq}")
    return event


# -- sinks -------------------------------------------------------------------


class EventSink:
    """Base sink: assigns sequence numbers and filters volatile events.

    Subclasses implement :meth:`write`; :meth:`emit` is the entry point
    the instrumentation helpers call.  ``include_volatile`` decides
    whether engine-plane events reach :meth:`write` (persistent streams
    say no, the flight recorder says yes).
    """

    include_volatile = False

    def __init__(self) -> None:
        self._seq = 0

    def emit(self, name: str, **fields: Any) -> Event | None:
        spec = EVENT_CATALOG.get(name)
        if spec is None:
            raise EventSchemaError(f"cannot emit uncatalogued event {name!r}")
        if spec.volatile and not self.include_volatile:
            return None
        event = Event(
            name=name, seq=self._seq, fields=tuple(sorted(fields.items()))
        )
        self._seq += 1
        self.write(event)
        return event

    def write(self, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (idempotent; default no-op)."""


class MemoryEventSink(EventSink):
    """In-memory sink (tests and programmatic consumers)."""

    def __init__(self, *, include_volatile: bool = False) -> None:
        super().__init__()
        self.include_volatile = include_volatile
        self.events: list[Event] = []

    def write(self, event: Event) -> None:
        self.events.append(event)


class JsonlEventSink(EventSink):
    """Append-only JSONL stream, flushed and fsynced per event.

    Line 1 is a header binding the stream to the schema version and an
    optional session key; each further line is one event with sorted
    keys.  The write discipline matches the PR 4 journal: a killed
    process leaves at most one torn final line, and everything before it
    is durable.  Volatile events are dropped (see the module doc) unless
    ``include_volatile`` is set — doing that forfeits the jobs-count
    byte-identity of the file.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        session: str | None = None,
        include_volatile: bool = False,
    ) -> None:
        super().__init__()
        self.path = Path(path)
        self.session = session
        self.include_volatile = include_volatile
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header: dict[str, Any] = {
            "stream": _STREAM_TOOL,
            "version": EVENTS_SCHEMA_VERSION,
        }
        if session is not None:
            header["session"] = session
        self._fh = open(self.path, "w")
        self._fh.write(json.dumps(header, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def write(self, event: Event) -> None:
        self._fh.write(json.dumps(event.to_obj(), sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class TeeEventSink(EventSink):
    """Fan one emission out to several sinks.

    Each child keeps its own sequence counter and volatile filter, so a
    persistent stream and a flight recorder can share the emission
    points without sharing a policy.
    """

    #: The tee itself accepts everything; children filter individually.
    include_volatile = True

    def __init__(self, sinks: list[EventSink]) -> None:
        super().__init__()
        self.sinks = sinks

    def emit(self, name: str, **fields: Any) -> Event | None:
        last: Event | None = None
        for sink in self.sinks:
            out = sink.emit(name, **fields)
            last = out if out is not None else last
        return last

    def write(self, event: Event) -> None:  # pragma: no cover - unused
        raise NotImplementedError("TeeEventSink dispatches via emit()")

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class FlightRecorder(EventSink):
    """Bounded ring buffer of recent events — the crash forensics plane.

    Keeps the last ``capacity`` events (volatile ones included: pool
    lifecycle is exactly what a hang post-mortem needs) and dumps them
    as a JSON crash report on demand.  Wired through
    :class:`repro.tuning.robust.RobustTuningSession`, which dumps on any
    unhandled error escaping the campaign.
    """

    include_volatile = True

    def __init__(self, capacity: int = 256) -> None:
        super().__init__()
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.events: deque[Event] = deque(maxlen=capacity)

    def write(self, event: Event) -> None:
        self.events.append(event)

    def dump(
        self,
        path: str | Path,
        *,
        reason: str,
        error: BaseException | None = None,
        session: str | None = None,
        extra: dict[str, Any] | None = None,
    ) -> Path:
        """Write the crash report; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        report: dict[str, Any] = {
            "report": _FLIGHT_TOOL,
            "version": EVENTS_SCHEMA_VERSION,
            "reason": reason,
            "session": session,
            "dropped": max(0, self._seq - len(self.events)),
            "events": [e.to_obj() for e in self.events],
        }
        if error is not None:
            report["error"] = {
                "type": type(error).__name__,
                "message": str(error),
            }
        if extra:
            report["extra"] = extra
        with open(path, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        logger.warning("wrote crash report %s (%s)", path, reason)
        return path


# -- the contextvar plumbing -------------------------------------------------

#: The contextvar every emission point consults.  ``None`` (the default)
#: means the event layer is off and the hook is one lookup + branch.
_ACTIVE: ContextVar[EventSink | None] = ContextVar(
    "repro_obs_events", default=None
)


def current_sink() -> EventSink | None:
    """The sink active in this context, or ``None`` when events are off."""
    return _ACTIVE.get()


@contextmanager
def event_stream(sink: EventSink) -> Iterator[EventSink]:
    """Install ``sink`` for the ``with`` body; yields it back."""
    token = _ACTIVE.set(sink)
    try:
        yield sink
    finally:
        _ACTIVE.reset(token)


@contextmanager
def suppress_events() -> Iterator[None]:
    """Silence event emission for the ``with`` body.

    Used around trial *measurement* (the resilient evaluator's inner
    call, the parallel engine's per-trial pipeline): trial-plane events
    are derived from the finished outcome by the search loop, so live
    emission from inside a measurement would double-report in serial
    runs and vanish in pooled ones — suppression is what makes the
    stream independent of where the measurement ran.
    """
    token = _ACTIVE.set(None)
    try:
        yield
    finally:
        _ACTIVE.reset(token)


def disable_events_in_process() -> None:
    """Force events off in this process (pool-worker initializer hook).

    The parallel engine's forked workers inherit the parent's sink
    through the contextvar; an fsync'd stream appended from four
    processes at once would interleave nondeterministically, so workers
    emit nothing and the parent derives their events from the collected
    outcomes (mirrors ``disable_tracing_in_process``).
    """
    _ACTIVE.set(None)


def emit(name: str, **fields: Any) -> Event | None:
    """Emit one event to the active sink (no-op when events are off)."""
    sink = _ACTIVE.get()
    if sink is None:
        return None
    return sink.emit(name, **fields)


# -- reading a stream back ---------------------------------------------------


def read_events(
    path: str | Path, *, strict: bool = False
) -> tuple[dict[str, Any], list[Event]]:
    """Parse one stream file; returns ``(header, events)``.

    Tolerates a torn final line (the process died mid-append) exactly
    like the journal reader.  With ``strict`` every record is validated
    against the catalog — the mode the ``tools/check.py`` events-lint
    step and ``python -m repro.obs.events`` run in.
    """
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise EventSchemaError(f"{path}: cannot read stream: {exc}") from exc
    if not lines:
        raise EventSchemaError(f"{path}: stream is empty (no header)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise EventSchemaError(f"{path}:1: unreadable header: {exc}") from exc
    if (
        not isinstance(header, dict)
        or header.get("stream") != _STREAM_TOOL
        or header.get("version") != EVENTS_SCHEMA_VERSION
    ):
        raise EventSchemaError(
            f"{path}:1: not a {_STREAM_TOOL} v{EVENTS_SCHEMA_VERSION} "
            f"stream header: {header!r}"
        )
    events: list[Event] = []
    for i, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            if i == len(lines):
                logger.warning(
                    "%s:%d: dropping torn final event line (%s)", path, i, exc
                )
                break
            raise EventSchemaError(
                f"{path}:{i}: corrupt event record: {exc}"
            ) from exc
        if strict:
            events.append(validate_event(obj, path=f"{path}:{i}"))
        else:
            events.append(Event.from_obj(obj))
    return header, events


def validate_stream(path: str | Path) -> int:
    """Strictly validate a stream file; returns the event count."""
    _header, events = read_events(path, strict=True)
    return len(events)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.obs.events STREAM...`` — validate stream files."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.events",
        description="validate structured event stream files against the "
                    "catalog/schema (the tools/check.py events-lint step)",
    )
    parser.add_argument("paths", nargs="+", metavar="STREAM")
    args = parser.parse_args(argv)
    status = 0
    for raw in args.paths:
        try:
            count = validate_stream(raw)
        except EventSchemaError as exc:
            print(f"{raw}: INVALID: {exc}")
            status = 1
        else:
            print(f"{raw}: ok ({count} event(s))")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    import sys

    sys.exit(main())
