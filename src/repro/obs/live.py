"""Live session monitoring — the engine behind ``repro top``.

A running (or finished, or crashed) resilient tuning session leaves two
append-only artifacts: the crash-safe trial journal
(:class:`repro.tuning.robust.TrialJournal`) and the structured event
stream (:mod:`repro.obs.events`).  Both are fsync'd per record and
tolerate a torn final line, so they can be read *while the session is
writing them* — which is exactly what this module does: parse whatever
prefix exists right now into a :class:`SessionSnapshot`, render it, and
repeat.

Ground truth discipline: **trial counts come from the journal** whenever
one is available — the journal is the record the session itself resumes
from, so ``repro top`` reporting anything else would be lying about what
a resume would replay.  The event stream layers on what the journal
cannot know: session/tier state, sweep progress against the space size,
replay counts, and the crash marker.  With only one of the two files the
snapshot degrades gracefully to what that file supports.

Throughput and ETA are computed *by the follower* from consecutive
snapshots (trials completed between refreshes over wall-clock between
refreshes): the artifacts themselves stay timestamp-free and
deterministic, monitoring stays a pure reader.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.obs.events import Event, read_events
from repro.tuning.evaluator import (
    STATUS_OK,
    STATUS_QUARANTINED,
    STATUS_REJECTED_SIMULATED,
    STATUS_REJECTED_STATIC,
    TRIAL_STATUSES,
)

#: Snapshot schema version (the ``repro top --json`` document).
TOP_SCHEMA_VERSION = 1


@dataclass
class SessionSnapshot:
    """Everything ``repro top`` knows about one session right now."""

    session: str | None = None
    #: Trial counts by status (journal-authoritative when available).
    trials: dict[str, int] = field(
        default_factory=lambda: {status: 0 for status in TRIAL_STATUSES}
    )
    retries: int = 0
    replayed: int = 0
    #: Fault observations by kind (``fault.observed`` + ``fault.injected``).
    faults: dict[str, int] = field(default_factory=dict)
    best_config: str | None = None
    best_mpoints: float = 0.0
    #: Ladder walk: ``[(tier, "running" | "failed" | "won"), ...]``.
    tiers: list[tuple[str, str]] = field(default_factory=list)
    #: Current sweep: method and space size from the latest ``sweep.start``.
    sweep_method: str | None = None
    space_size: int | None = None
    finished: bool = False
    crashed: str | None = None
    events_seen: int = 0
    journal_trials: int | None = None
    source: str = ""

    @property
    def completed(self) -> int:
        """Trials with a final classification (any status)."""
        return sum(self.trials.values())

    def to_obj(self) -> dict[str, Any]:
        return {
            "schema_version": TOP_SCHEMA_VERSION,
            "session": self.session,
            "trials": dict(self.trials),
            "completed": self.completed,
            "retries": self.retries,
            "replayed": self.replayed,
            "faults": dict(sorted(self.faults.items())),
            "best": {
                "config": self.best_config,
                "mpoints_per_s": self.best_mpoints,
            },
            "tiers": [list(t) for t in self.tiers],
            "sweep": {"method": self.sweep_method, "space_size": self.space_size},
            "finished": self.finished,
            "crashed": self.crashed,
            "events_seen": self.events_seen,
            "journal_trials": self.journal_trials,
            "source": self.source,
        }


# -- tolerant readers --------------------------------------------------------


def read_journal_counts(path: str | Path) -> SessionSnapshot:
    """Parse a trial journal into a snapshot (torn-final-line tolerant).

    Independent of :class:`~repro.tuning.robust.TrialJournal` on purpose:
    the monitor must not need the session key the journal is bound to,
    and a half-written record mid-``repro top`` refresh must never raise.
    Unreadable interior lines are skipped (the writer fsyncs per record,
    so in practice only the final line can be torn).
    """
    snap = SessionSnapshot(source="journal")
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError:
        return snap
    if not lines:
        return snap
    try:
        header = json.loads(lines[0])
        if isinstance(header, dict):
            snap.session = header.get("session")
    except json.JSONDecodeError:
        return snap
    count = 0
    for line in lines[1:]:
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn (or foreign) line: skip, keep counting
        status = obj.get("status")
        if status not in TRIAL_STATUSES:
            continue
        count += 1
        snap.trials[status] += 1
        snap.retries += max(0, int(obj.get("attempts", 1)) - 1)
        for kind in obj.get("faults", ()):  # kinds that touched the outcome
            kind = str(kind)
            snap.faults[kind] = snap.faults.get(kind, 0) + 1
        if status == STATUS_OK:
            rate = float(obj.get("mpoints_per_s", 0.0))
            if rate > snap.best_mpoints:
                snap.best_mpoints = rate
                cfg = obj.get("config")
                if isinstance(cfg, list):
                    snap.best_config = f"({', '.join(str(v) for v in cfg)})"
    snap.journal_trials = count
    return snap


def _apply_event(snap: SessionSnapshot, event: Event) -> None:
    payload = dict(event.fields)
    name = event.name
    if name == "session.start":
        snap.session = snap.session or payload.get("session")
    elif name == "session.tier_start":
        snap.tiers.append((str(payload.get("tier")), "running"))
    elif name == "session.tier_failed":
        tier = str(payload.get("tier"))
        snap.tiers = [
            (t, "failed" if t == tier and s == "running" else s)
            for t, s in snap.tiers
        ]
    elif name == "session.finished":
        snap.finished = True
        snap.tiers = [
            (t, "won" if s == "running" else s) for t, s in snap.tiers
        ]
        snap.best_config = str(payload.get("best_config", snap.best_config))
        snap.best_mpoints = float(
            payload.get("best_mpoints", snap.best_mpoints)
        )
    elif name == "session.crash":
        snap.crashed = str(payload.get("error", "unknown error"))
    elif name == "sweep.start":
        snap.sweep_method = str(payload.get("method"))
        size = payload.get("space_size")
        snap.space_size = int(size) if size is not None else None
    elif name == "trial.measured":
        snap.trials[STATUS_OK] += 1
        rate = float(payload.get("mpoints_per_s", 0.0))
        if rate > snap.best_mpoints:
            snap.best_mpoints = rate
            snap.best_config = str(payload.get("config"))
    elif name == "trial.rejected":
        reason = payload.get("reason")
        status = (
            STATUS_REJECTED_STATIC if reason == "static"
            else STATUS_REJECTED_SIMULATED
        )
        snap.trials[status] += 1
    elif name == "trial.quarantined":
        snap.trials[STATUS_QUARANTINED] += 1
    elif name == "trial.retried":
        snap.retries += int(payload.get("retries", 0))
    elif name == "trial.replayed":
        snap.replayed += 1
    elif name in ("fault.observed", "fault.injected"):
        kind = str(payload.get("kind", "?"))
        snap.faults[kind] = snap.faults.get(kind, 0) + 1


def snapshot_session(
    journal_path: str | Path | None = None,
    events_path: str | Path | None = None,
) -> SessionSnapshot:
    """One self-consistent view of a session from its on-disk artifacts.

    With both files, the journal owns the trial/retry/fault counts (its
    records are what a resume replays) and the event stream contributes
    the session/tier/sweep state plus replay counts.  Missing or not-yet
    -created files contribute nothing — monitoring a session that has
    not started simply shows zeros.
    """
    snap = (
        read_journal_counts(journal_path)
        if journal_path is not None
        else SessionSnapshot()
    )
    journal_counts = snap.journal_trials is not None and snap.source == "journal"
    if events_path is not None:
        try:
            _header, events = read_events(events_path)
        except Exception:
            events = []
            _header = {}
        if not journal_counts:
            snap.source = "events"
        else:
            snap.source = "journal+events"
        if snap.session is None and isinstance(_header, dict):
            snap.session = _header.get("session")
        snap.events_seen = len(events)
        for event in events:
            if journal_counts and event.name.startswith(("trial.", "fault.")):
                # Journal-authoritative counts; the stream still owns
                # the replay tally (journals do not record replays).
                if event.name == "trial.replayed":
                    snap.replayed += 1
                continue
            _apply_event(snap, event)
    return snap


# -- rendering ---------------------------------------------------------------


def render_snapshot(
    snap: SessionSnapshot, *, throughput: float | None = None
) -> str:
    """The human-readable ``repro top`` panel (plain text, no ANSI)."""
    lines: list[str] = []
    state = (
        f"CRASHED: {snap.crashed}" if snap.crashed
        else "finished" if snap.finished
        else "running"
    )
    lines.append(f"session : {snap.session or '?'} [{state}]")
    done = snap.completed
    if snap.space_size:
        pct = 100.0 * done / snap.space_size
        bar_w = 30
        filled = min(bar_w, round(bar_w * done / snap.space_size))
        bar = "#" * filled + "-" * (bar_w - filled)
        progress = f"[{bar}] {done}/{snap.space_size} ({pct:.0f}%)"
    else:
        progress = f"{done} trial(s)"
    method = f" {snap.sweep_method}" if snap.sweep_method else ""
    lines.append(f"sweep   :{method} {progress}")
    if throughput is not None:
        eta = ""
        if snap.space_size and throughput > 0 and not snap.finished:
            remaining = max(0, snap.space_size - done)
            eta = f", ETA {remaining / throughput:.0f}s"
        lines.append(f"rate    : {throughput:.1f} trial/s{eta}")
    lines.append(
        "trials  : "
        f"{snap.trials[STATUS_OK]} ok, "
        f"{snap.trials[STATUS_REJECTED_STATIC]} rejected-static, "
        f"{snap.trials[STATUS_REJECTED_SIMULATED]} rejected-simulated, "
        f"{snap.trials[STATUS_QUARANTINED]} quarantined"
    )
    lines.append(
        f"healing : {snap.retries} retries, {snap.replayed} replayed, "
        + (
            ", ".join(f"{k}x{v}" for k, v in sorted(snap.faults.items()))
            or "no faults"
        )
    )
    if snap.tiers:
        lines.append(
            "ladder  : "
            + " -> ".join(f"{t} ({s})" for t, s in snap.tiers)
        )
    if snap.best_config is not None:
        lines.append(
            f"best    : {snap.best_config} at {snap.best_mpoints:.1f} MPt/s"
        )
    return "\n".join(lines)


def follow_session(
    journal_path: str | Path | None,
    events_path: str | Path | None,
    *,
    interval_s: float = 1.0,
    refreshes: int | None = None,
    emit: Callable[[str], None] = print,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> Iterator[SessionSnapshot]:
    """Yield snapshots until the session finishes, crashes, or the
    refresh budget runs out; ``emit`` receives each rendered panel.

    Throughput for the panel (and its ETA) is the completed-trial delta
    between consecutive refreshes over the wall-clock between them —
    measured here in the follower, never stored in the artifacts.
    """
    prev_done: int | None = None
    prev_t: float | None = None
    n = 0
    while True:
        snap = snapshot_session(journal_path, events_path)
        now = clock()
        throughput = None
        if prev_done is not None and prev_t is not None and now > prev_t:
            throughput = max(0.0, (snap.completed - prev_done) / (now - prev_t))
        prev_done, prev_t = snap.completed, now
        emit(render_snapshot(snap, throughput=throughput))
        yield snap
        n += 1
        if snap.finished or snap.crashed is not None:
            return
        if refreshes is not None and n >= refreshes:
            return
        sleep(interval_s)
