"""The analyzer driver: run every applicable rule family over a subject.

One entry point per subject kind —

* :func:`analyze_plan` for a :class:`~repro.kernels.base.KernelPlan`
  (optionally against a device and grid, which unlocks the coverage,
  halo, memory and resource families);
* :func:`analyze_expr` / :func:`analyze_source` for DSL programs;
* :func:`analyze_slabs` for multi-GPU decompositions;

plus :func:`gate_codegen`, the refusal the CUDA emitter applies before
shipping a plan.  Analysis never executes a sweep: the deepest it goes is
asking the plan for its declared :class:`~repro.gpusim.workload.BlockWorkload`
geometry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.analysis import coverage, dsl, halo, memaccess, resources, rules
from repro.analysis.diagnostics import AnalysisReport
from repro.errors import ConfigurationError, ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.planir import AccessPlanIR
    from repro.cluster.decompose import Slab
    from repro.codegen.cuda import CudaSource
    from repro.gpusim.device import DeviceSpec
    from repro.kernels.base import KernelPlan
    from repro.stencils.expr import StencilExpr


def _space_diagnostics(plan: "KernelPlan") -> list:
    """CFG-NONDIV: flag blocking factors outside the tuner's default lists.

    Imported lazily — the tuners call into :mod:`repro.analysis.resources`
    for their fast-reject path, so a module-level import here would be a
    package cycle.
    """
    from repro.tuning.space import (
        DEFAULT_RX, DEFAULT_RY, DEFAULT_TX, DEFAULT_TY,
    )

    block = plan.block
    strays = [
        f"{name}={value}"
        for name, value, known in (
            ("TX", block.tx, DEFAULT_TX),
            ("TY", block.ty, DEFAULT_TY),
            ("RX", block.rx, DEFAULT_RX),
            ("RY", block.ry, DEFAULT_RY),
        )
        if value not in known
    ]
    if not strays:
        return []
    return [rules.CFG_NONDIV.diag(
        plan.name,
        f"{', '.join(strays)} outside the default tuning space: "
        "the auto-tuner would never propose this configuration",
        hint="fine for manual runs; extend ParameterSpace to tune over it",
    )]


def analyze_plan(
    plan: "KernelPlan",
    device: "DeviceSpec | None" = None,
    grid_shape: tuple[int, int, int] | None = None,
    *,
    stride_x: int | None = None,
    stride_y: int | None = None,
    suppress: Iterable[str] = (),
) -> AnalysisReport:
    """Run every applicable rule family over one kernel plan.

    Without ``grid_shape`` only the structural families run (register-tile
    coverage, temporal ghosts, expression semantics, tuning-space fit); a
    grid adds launch-grid coverage and halo analysis, and a device
    additionally unlocks the workload-level families (shared buffer,
    coalescing regions, bank conflicts, resource limits).

    ``stride_x`` / ``stride_y`` override the launch-grid stride — the
    injection knob ``repro lint --tile-stride`` uses to demonstrate
    coverage races and holes on an otherwise healthy plan.
    """
    report = AnalysisReport(subject=plan.name, suppressed=tuple(suppress))
    report.extend(coverage.register_tile_diagnostics(plan, stride_x, stride_y))
    report.extend(coverage.temporal_diagnostics(plan))
    report.extend(_space_diagnostics(plan))
    expr = getattr(plan, "expr", None)
    if expr is not None:
        report.extend(dsl.expr_diagnostics(expr))

    if grid_shape is not None:
        report.extend(
            coverage.tile_cover_diagnostics(plan, grid_shape, stride_x, stride_y)
        )
        report.extend(halo.grid_halo_diagnostics(plan, grid_shape))

    # Workload-level families need the declared geometry; deriving it on a
    # plan already known broken would raise the very conditions reported
    # above, so stop at the first error like any lint pipeline.
    if device is not None and grid_shape is not None and report.ok:
        try:
            workload = plan.block_workload(device, grid_shape)
        except ReproError as exc:
            report.add(dsl.diagnostic_from_error(exc, plan.name, rules.CFG_POSITIVE))
        else:
            report.extend(
                halo.workload_halo_diagnostics(plan, workload, grid_shape)
            )
            report.extend(memaccess.region_diagnostics(workload, plan.name))
            report.extend(memaccess.smem_tile_diagnostics(plan, device))
            report.extend(resources.resource_diagnostics(plan, workload, device))
    return report


def analyze_expr(
    expr: "StencilExpr", *, suppress: Iterable[str] = ()
) -> AnalysisReport:
    """Semantic lint of one stencil expression."""
    report = AnalysisReport(subject=expr.name, suppressed=tuple(suppress))
    report.extend(dsl.expr_diagnostics(expr))
    return report


def analyze_source(
    source: str, name: str = "parsed", *, suppress: Iterable[str] = ()
) -> AnalysisReport:
    """Parse-and-lint DSL source (parse failures become diagnostics)."""
    report = AnalysisReport(subject=name, suppressed=tuple(suppress))
    _, diags = dsl.source_diagnostics(source, name)
    report.extend(diags)
    return report


def analyze_slabs(
    slabs: "list[Slab]",
    lz: int,
    radius: int,
    *,
    suppress: Iterable[str] = (),
) -> AnalysisReport:
    """Coverage lint of a multi-GPU z-slab decomposition."""
    report = AnalysisReport(
        subject=f"{len(slabs)}-slab decomposition of lz={lz}",
        suppressed=tuple(suppress),
    )
    report.extend(coverage.slab_diagnostics(slabs, lz, radius))
    return report


def analyze_emitted(
    src: "CudaSource",
    ir: "AccessPlanIR | None" = None,
    *,
    suppress: Iterable[str] = (),
) -> AnalysisReport:
    """Run the ``SRC-*`` family over one emitted translation unit.

    ``ir`` defaults to the access-plan IR the emitter attached to the
    source record; without any IR only the IR-free structural checks
    (delimiter balance, dialect purity) apply.  Imported lazily — the
    verifier's documentation references the codegen types and the
    emitters import this package.
    """
    from repro.analysis.srcverify import verify_emitted

    report = AnalysisReport(
        subject=f"{src.name} [{src.backend}]", suppressed=tuple(suppress)
    )
    report.extend(verify_emitted(src, ir))
    return report


def gate_codegen(
    plan: "KernelPlan",
    device: "DeviceSpec | None" = None,
    grid_shape: tuple[int, int, int] | None = None,
) -> None:
    """Refuse to emit CUDA for a plan carrying error-level diagnostics.

    Raises :class:`~repro.errors.ConfigurationError` (tagged with the first
    finding's rule id) so the emitter can never ship a racy or
    out-of-bounds kernel; warnings pass.
    """
    report = analyze_plan(plan, device, grid_shape)
    if report.ok:
        return
    findings = "; ".join(
        f"[{d.rule}] {d.message}" for d in report.errors
    )
    raise ConfigurationError(
        f"refusing to generate code for {plan.name}: {findings}",
        rule=report.errors[0].rule,
    )
