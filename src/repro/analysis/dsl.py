"""Semantic checks over stencil expressions and DSL source.

The hard errors of the DSL (syntax, undefined grids, arity mismatches) are
raised eagerly by :mod:`repro.stencils.parser` and
:mod:`repro.stencils.expr` — :func:`source_diagnostics` catches them and
re-expresses each as a diagnostic carrying the exception's rule id.  On an
expression that *constructs*, :func:`expr_diagnostics` reports the
conditions that are legal but suspicious or performance-relevant: dead
taps, duplicate taps, missing centre taps, asymmetric z reach, and
pointwise (radius-0) programs.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis import rules
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.errors import StencilDefinitionError
from repro.stencils.expr import StencilExpr
from repro.stencils.parser import parse_stencil


def diagnostic_from_error(
    error: Exception, location: str, fallback: "rules.Rule"
) -> Diagnostic:
    """Turn an eagerly-raised library error into an error-level diagnostic.

    When the exception carries a ``rule`` id from the catalog, the
    diagnostic keeps that id (so lazy lint and eager raise name the defect
    identically); severity is always ERROR — the library refused the input.
    """
    rule = rules.catalog().get(getattr(error, "rule", None) or "", fallback)
    return Diagnostic(
        rule=rule.id,
        severity=Severity.ERROR,
        location=location,
        message=str(error),
    )


def expr_diagnostics(expr: StencilExpr) -> list[Diagnostic]:
    """Warnings and notes over one valid :class:`StencilExpr`."""
    out: list[Diagnostic] = []
    name = expr.name

    for output in expr.outputs:
        loc = f"{name}.{output.name}"
        if not any(t.offset == (0, 0, 0) for t in output.taps):
            out.append(rules.DSL_NO_CENTRE.diag(
                loc,
                "no tap reads the centre point: a pure shift defeats the "
                "in-plane recurrence's reuse of the current plane",
            ))
        multiplicity = Counter(
            (t.grid, t.offset, t.coeff_grid) for t in output.taps
        )
        for (grid, offset, coeff_grid), n in sorted(multiplicity.items()):
            if n > 1:
                via = f" via coeff grid {coeff_grid}" if coeff_grid is not None else ""
                out.append(rules.DSL_DUP_TAP.diag(
                    loc,
                    f"grid[{grid}] at offset {offset}{via} is summed "
                    f"{n} times",
                    hint="fold the coefficients into one tap",
                ))
        for tap in output.taps:
            if tap.coeff == 0.0:
                out.append(rules.DSL_ZERO_COEFF.diag(
                    loc,
                    f"tap grid[{tap.grid}] at {tap.offset} has coefficient "
                    "0.0: a dead load",
                    hint="drop the term",
                ))

    if expr.radius() == 0:
        out.append(rules.DSL_POINTWISE.diag(
            name,
            "every tap is centred (radius 0): this is a pointwise map, not "
            "a stencil — blocked loading buys nothing",
        ))
    for grid in expr.stenciled_grids():
        back, fwd = expr.z_extent(grid)
        if back != fwd:
            out.append(rules.DSL_ASYM_Z.diag(
                name,
                f"grid[{grid}] reaches z-{back}..z+{fwd}: the asymmetry "
                f"deepens the register pipeline to {back + fwd + 1} planes "
                "(Upstream-style)",
            ))
    return out


def source_diagnostics(
    source: str, name: str = "parsed"
) -> tuple[StencilExpr | None, list[Diagnostic]]:
    """Parse DSL source; return (expr or None, diagnostics).

    A source that does not compile yields ``(None, [one error])``; one that
    does yields the expression plus its semantic warnings.
    """
    try:
        expr, _ = parse_stencil(source, name)
    except StencilDefinitionError as exc:
        return None, [diagnostic_from_error(exc, name, rules.DSL_PARSE)]
    return expr, expr_diagnostics(expr)
