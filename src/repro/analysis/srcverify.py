"""Emitted-source verification: the ``SRC-*`` rule family.

The access-plan IR (:mod:`repro.analysis.planir`) says what a generated
translation unit *must* contain — tile constants, barrier points, vector
widths, launch bounds, z-pipeline depths.  This pass re-parses the text
an emitter actually produced and cross-checks the two, so a codegen bug
(or a botched dialect rewrite in the OpenCL/HIP derivation) is a lint
error at generation time instead of a miscompiled kernel later.

All checks are purely textual: comment-stripped token scans and small
regexes over structure the emitters guarantee (``#define`` constants, the
shared-tile declaration, the register-column declarations).  Nothing here
compiles or executes anything.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING

from repro.analysis import rules
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.planir import AccessPlanIR

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a codegen cycle)
    from repro.codegen.cuda import CudaSource

#: Backend -> the barrier intrinsic whose per-plane count the IR pins.
BARRIER_TOKENS = {
    "cuda": "__syncthreads()",
    "hip": "__syncthreads()",
    "opencl": "barrier(CLK_LOCAL_MEM_FENCE)",
}

#: Backend -> tokens that must NOT appear in (comment-stripped) code.
#: The OpenCL list is the translation-completeness contract of the regex
#: rewriter; the CUDA/HIP list catches the reverse direction.
FOREIGN_TOKENS = {
    "cuda": (
        "__kernel", "__local ", "get_local_id", "get_group_id",
        "barrier(CLK_LOCAL_MEM_FENCE)", "reqd_work_group_size",
        "opencl_unroll_hint",
    ),
    "hip": (
        "__kernel", "__local ", "get_local_id", "get_group_id",
        "barrier(CLK_LOCAL_MEM_FENCE)", "reqd_work_group_size",
        "opencl_unroll_hint",
    ),
    "opencl": (
        "__global__", "__shared__", "__syncthreads", "threadIdx",
        "blockIdx", 'extern "C"', "reinterpret_cast", "__launch_bounds__",
        "__device__", "__forceinline__", "#pragma unroll",
    ),
}

#: Baked integer constants the IR pins, name -> extractor.
_PINNED_DEFINES = (
    ("RADIUS", lambda ir: ir.radius),
    ("BLOCK_X", lambda ir: ir.block[0]),
    ("BLOCK_Y", lambda ir: ir.block[1]),
    ("RX", lambda ir: ir.block[2]),
    ("RY", lambda ir: ir.block[3]),
    ("TILE_X", lambda ir: ir.block[0] * ir.block[2]),
    ("TILE_Y", lambda ir: ir.block[1] * ir.block[3]),
    ("TILE_PITCH", lambda ir: ir.tile.pitch_elems),
)

_VEC_CAST = {
    # reinterpret_cast<const float2*> / (const __global double4*)
    "cuda": re.compile(r"reinterpret_cast<const (?:float|double)(\d?)\*>"),
    "hip": re.compile(r"reinterpret_cast<const (?:float|double)(\d?)\*>"),
    "opencl": re.compile(r"\(const __global (?:float|double)(\d?)\*\)"),
}

_ROW_VECS = re.compile(
    r"#define ROW_VECS \(\(\(TILE_X \+ 2 \* RADIUS\) \+ (\d+) - 1\) / (\d+)\)"
)
_ZCOL_DECL = re.compile(r"zcol\[RY\]\[RX\]\[(\d+)\]")


def strip_comments(text: str) -> str:
    """Drop ``//`` line comments and ``/* */`` blocks.

    The generated sources carry no string or character literals outside
    comments (the prediction header's JSON lives *in* a comment), so a
    plain lexical strip is exact for them.
    """
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", "", text)


def delimiters_balanced(code: str) -> bool:
    """Check ``()``/``{}``/``[]`` nesting over comment-stripped code."""
    pairs = {"(": ")", "{": "}", "[": "]"}
    stack: list[str] = []
    for ch in code:
        if ch in pairs:
            stack.append(pairs[ch])
        elif ch in pairs.values():
            if not stack or stack.pop() != ch:
                return False
    return not stack


def _int_defines(text: str) -> dict[str, int]:
    """All ``#define NAME <int>`` constants of the translation unit."""
    return {
        m.group(1): int(m.group(2))
        for m in re.finditer(r"#define (\w+) (-?\d+)\s*$", text, re.MULTILINE)
    }


def _check_structure(
    src: CudaSource, code: str, loc: str
) -> list[Diagnostic]:
    """IR-free checks: balance and dialect purity."""
    diags: list[Diagnostic] = []
    if not delimiters_balanced(code):
        diags.append(rules.SRC_DELIM.diag(
            loc, "unbalanced ()/{}/[] delimiters in the emitted code",
            hint="the translation unit is truncated or a rewrite mangled it",
        ))
    for token in FOREIGN_TOKENS.get(src.backend, ()):
        if token in code:
            diags.append(rules.SRC_DIALECT.diag(
                loc,
                f"foreign-dialect token {token!r} present in the "
                f"{src.backend} output",
                hint="the dialect rewrite set is incomplete for this plan",
            ))
    if src.backend == "hip" and "#include <hip/hip_runtime.h>" not in src.text:
        diags.append(rules.SRC_DIALECT.diag(
            loc, "HIP translation unit lacks '#include <hip/hip_runtime.h>'",
        ))
    return diags


def _check_constants(ir: AccessPlanIR, text: str, loc: str) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    defines = _int_defines(text)
    for name, want_of in _PINNED_DEFINES:
        want = want_of(ir)
        got = defines.get(name)
        if got is None:
            diags.append(rules.SRC_TILE_DIM.diag(
                loc, f"#define {name} missing (IR pins {want})",
            ))
        elif got != want:
            diags.append(rules.SRC_TILE_DIM.diag(
                loc, f"#define {name} is {got}, IR pins {want}",
            ))
    return diags


def _check_tile_decl(
    src: CudaSource, ir: AccessPlanIR, code: str, loc: str
) -> list[Diagnostic]:
    qualifier = "__local" if src.backend == "opencl" else "__shared__"
    decl = f"{qualifier} {ir.ctype} tile[TILE_Y + 2 * RADIUS][TILE_PITCH]"
    if decl not in code:
        return [rules.SRC_TILE_DIM.diag(
            loc,
            f"shared-tile declaration {decl!r} not found",
            hint="tile geometry or element type diverged from the IR",
        )]
    return []


def _check_barriers(
    src: CudaSource, ir: AccessPlanIR, code: str, loc: str
) -> list[Diagnostic]:
    token = BARRIER_TOKENS.get(src.backend)
    if token is None:
        return []
    count = code.count(token)
    if count != ir.barriers_per_plane:
        return [rules.SRC_BARRIER.diag(
            loc,
            f"{count} {token!r} per plane, IR pins {ir.barriers_per_plane}",
            hint="one barrier after the cooperative load, one after compute",
        )]
    return []


def _check_vectors(
    src: CudaSource, ir: AccessPlanIR, code: str, loc: str
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    m = _ROW_VECS.search(src.text)
    if m is None:
        diags.append(rules.SRC_VEC.diag(loc, "#define ROW_VECS missing"))
    elif int(m.group(1)) != ir.vector_width or m.group(1) != m.group(2):
        diags.append(rules.SRC_VEC.diag(
            loc,
            f"ROW_VECS divides rows by {m.group(1)}/{m.group(2)}, "
            f"IR pins vector width {ir.vector_width}",
        ))
    cast_widths = {
        int(w or "1") for w in _VEC_CAST[src.backend].findall(code)
    }
    # Only the fullslice/horizontal merged loads emit vector casts; where
    # they appear, the widest must be exactly the IR's legal width.
    if cast_widths and max(cast_widths) != ir.vector_width:
        diags.append(rules.SRC_VEC.diag(
            loc,
            f"emitted vector casts of width {sorted(cast_widths)}, "
            f"IR pins {ir.vector_width}",
            hint="a wider-than-legal cast breaks the alignment guarantee",
        ))
    if not cast_widths and ir.vector_width > 1 and ir.variant in (
        "fullslice", "horizontal"
    ):
        diags.append(rules.SRC_VEC.diag(
            loc,
            f"IR pins vector width {ir.vector_width} but the "
            f"{ir.variant} load emits no vector cast",
        ))
    return diags


def _check_launch_bounds(
    src: CudaSource, ir: AccessPlanIR, code: str, loc: str
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    if src.launch_bounds != ir.launch_bounds:
        diags.append(rules.SRC_LAUNCH_BOUNDS.diag(
            loc,
            f"source record declares launch bounds {src.launch_bounds}, "
            f"IR pins {ir.launch_bounds}",
        ))
    if src.backend == "opencl":
        if "reqd_work_group_size(BLOCK_X, BLOCK_Y, 1)" not in src.text:
            diags.append(rules.SRC_LAUNCH_BOUNDS.diag(
                loc, "reqd_work_group_size(BLOCK_X, BLOCK_Y, 1) missing",
            ))
    elif "__launch_bounds__(THREADS)" not in code:
        diags.append(rules.SRC_LAUNCH_BOUNDS.diag(
            loc, "__launch_bounds__(THREADS) annotation missing",
        ))
    return diags


def _check_zpipeline(
    ir: AccessPlanIR, code: str, loc: str
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    m = _ZCOL_DECL.search(code)
    if m is None:
        diags.append(rules.SRC_QUEUE.diag(
            loc, "z register-column declaration zcol[RY][RX][...] missing",
        ))
    elif int(m.group(1)) != ir.zqueue_depth:
        diags.append(rules.SRC_QUEUE.diag(
            loc,
            f"z-column depth {m.group(1)}, IR pins {ir.zqueue_depth} "
            f"({'r' if ir.method == 'inplane' else '2r+1'} for the "
            f"{ir.method} method)",
        ))
    has_queue = "queue[RY][RX][RADIUS]" in code
    if ir.queue_depth > 0 and not has_queue:
        diags.append(rules.SRC_QUEUE.diag(
            loc,
            "in-plane method requires the partial-sum queue "
            "queue[RY][RX][RADIUS] (Eqns (3)-(5))",
        ))
    if ir.queue_depth == 0 and has_queue:
        diags.append(rules.SRC_QUEUE.diag(
            loc,
            "forward-plane method must not carry a partial-sum queue",
        ))
    return diags


def _check_estimate_header(
    src: CudaSource, ir: AccessPlanIR, loc: str
) -> list[Diagnostic]:
    from repro.analysis.estimate import parse_header

    try:
        payload = parse_header(src.text)
    except ValueError as exc:
        return [rules.SRC_ESTIMATE.diag(
            loc, f"prediction header unparsable: {exc}",
        )]
    if payload is None:
        return [rules.SRC_ESTIMATE.diag(
            loc, "no '// repro.estimate:' prediction header",
            hint="emitters attach one unless generation was asked not to",
        )]
    if payload.get("kernel") != ir.kernel:
        return [rules.SRC_ESTIMATE.diag(
            loc,
            f"prediction header names kernel {payload.get('kernel')!r}, "
            f"IR is {ir.kernel!r}",
        )]
    return []


def verify_emitted(
    src: CudaSource, ir: AccessPlanIR | None = None
) -> list[Diagnostic]:
    """Cross-check one emitted translation unit against its access-plan IR.

    ``ir`` defaults to the one the emitter attached to the source record.
    Without any IR (a source built by hand), only the IR-free structural
    checks run — delimiter balance and dialect purity.
    """
    ir = ir if ir is not None else src.ir
    loc = f"{src.name} [{src.backend}]"
    code = strip_comments(src.text)
    diags = _check_structure(src, code, loc)
    if ir is None:
        return diags
    diags.extend(_check_constants(ir, src.text, loc))
    diags.extend(_check_tile_decl(src, ir, code, loc))
    diags.extend(_check_barriers(src, ir, code, loc))
    diags.extend(_check_vectors(src, ir, code, loc))
    diags.extend(_check_launch_bounds(src, ir, code, loc))
    diags.extend(_check_zpipeline(ir, code, loc))
    diags.extend(_check_estimate_header(src, ir, loc))
    return diags
