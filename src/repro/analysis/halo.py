"""Out-of-bounds halo analysis.

A stencil of radius ``r`` reads up to ``r`` cells past the point it
computes; a plan is only sound when the grid leaves room for that reach
(interior points exist at all), when the effective tile fits inside one
plane, and when the shared-memory staging buffer is at least large enough
to hold what the kernel stages into it.  These are the static versions of
the eager checks in :meth:`repro.kernels.base.KernelPlan.check_grid_shape`
and :func:`repro.kernels.validate.halo_fits`, extended to per-tap offsets
of general :class:`~repro.stencils.expr.StencilExpr` programs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis import rules
from repro.analysis.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpusim.workload import BlockWorkload
    from repro.kernels.base import KernelPlan

_AXES = ("x", "y", "z")


def grid_halo_diagnostics(
    plan: "KernelPlan", grid_shape: tuple[int, int, int]
) -> list[Diagnostic]:
    """HALO-GRID-SMALL / HALO-TILE-EXCEEDS / HALO-TAP-OOB for one plan."""
    lx, ly, lz = grid_shape
    r = plan.halo_radius()
    loc = plan.name
    out: list[Diagnostic] = []

    if min(lx, ly, lz) < 2 * r + 1:
        out.append(rules.HALO_GRID_SMALL.diag(
            loc,
            f"grid {grid_shape} smaller than the stencil extent "
            f"{2 * r + 1} on some axis: no interior point exists",
            hint=f"radius-{r} stencils need at least "
                 f"({2 * r + 1}, {2 * r + 1}, {2 * r + 1})",
        ))
    if plan.block.tile_x > lx or plan.block.tile_y > ly:
        out.append(rules.HALO_TILE_EXCEEDS.diag(
            loc,
            f"effective tile {plan.block.tile_x}x{plan.block.tile_y} "
            f"exceeds the {lx}x{ly} grid plane",
            hint="shrink TX*RX / TY*RY or enlarge the grid",
        ))

    # Per-tap reach for general expressions: an offset whose magnitude
    # meets or exceeds the axis extent is out of bounds for *every* output
    # point, boundary handling included.
    expr = getattr(plan, "expr", None)
    if expr is not None:
        seen: set[tuple[int, tuple[int, int, int]]] = set()
        for tap in expr.all_taps():
            key = (tap.grid, tap.offset)
            if key in seen:
                continue
            seen.add(key)
            for axis, dim in enumerate(grid_shape):
                if abs(tap.offset[axis]) >= dim:
                    out.append(rules.HALO_TAP_OOB.diag(
                        loc,
                        f"tap grid[{tap.grid}] offset {tap.offset} reaches "
                        f"{abs(tap.offset[axis])} cells along "
                        f"{_AXES[axis]}, but the grid is only {dim} deep",
                    ))
                    break
    return out


def workload_halo_diagnostics(
    plan: "KernelPlan",
    workload: "BlockWorkload",
    grid_shape: tuple[int, int, int],
) -> list[Diagnostic]:
    """Workload-level halo checks: HALO-SMEM-SHORT and HALO-PROLOGUE.

    The shared-buffer check is a conservative lower bound: whatever a
    staging kernel keeps in shared memory, it must at least hold the bare
    effective tile of one plane — a declared buffer below that guarantees
    out-of-bounds shared writes regardless of the halo variant.  Kernels
    that do not stage (``smem_bytes == 0``, e.g. texture loads) are exempt.
    """
    out: list[Diagnostic] = []
    loc = plan.name
    if workload.smem_bytes:
        floor = plan.block.tile_x * plan.block.tile_y * plan.elem_bytes
        if workload.smem_bytes < floor:
            out.append(rules.HALO_SMEM_SHORT.diag(
                loc,
                f"declared shared buffer {workload.smem_bytes}B cannot hold "
                f"even the bare {plan.block.tile_x}x{plan.block.tile_y} tile "
                f"({floor}B): staging writes run past the buffer",
                hint="size the buffer with smem_tile_bytes(halo_x, halo_y)",
            ))
    lz = grid_shape[2]
    if workload.prologue_planes >= lz:
        out.append(rules.HALO_PROLOGUE.diag(
            loc,
            f"register-pipeline prologue streams {workload.prologue_planes} "
            f"planes but the grid is only {lz} deep: the sweep never reaches "
            "steady state",
            hint="lower the fused depth or use a deeper grid",
        ))
    return out
