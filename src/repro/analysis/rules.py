"""The rule catalog: every diagnostic the analyzer can emit.

Rule ids are stable API (the CLI's ``--suppress``, the JSON output, and
the ``rule=`` attribute of eagerly-raised :class:`repro.errors.ReproError`
all use them), so additions are fine but renames are breaking.  The id
prefix names the family:

* ``COV-``  race / coverage verification (every output point written
  exactly once, ghost-zone hazards, slab decomposition);
* ``HALO-`` out-of-bounds halo analysis (stencil extent vs. grid shape,
  shared-tile sufficiency);
* ``MEM-``  static coalescing and shared-memory bank-conflict lint;
* ``RES-``  device resource overflow / occupancy pre-checks;
* ``DSL-``  stencil-expression semantic checks;
* ``CFG-``  blocking-configuration well-formedness.

``docs/ANALYSIS.md`` is the user-facing version of this table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.diagnostics import Diagnostic, Severity


@dataclass(frozen=True)
class Rule:
    """One catalog entry: id, default severity, what it proves."""

    id: str
    severity: Severity
    summary: str

    def diag(self, location: str, message: str, hint: str = "") -> Diagnostic:
        """Make a diagnostic for this rule at its default severity."""
        return Diagnostic(
            rule=self.id,
            severity=self.severity,
            location=location,
            message=message,
            hint=hint,
        )


_CATALOG: dict[str, Rule] = {}


def _rule(id: str, severity: Severity, summary: str) -> Rule:
    rule = Rule(id=id, severity=severity, summary=summary)
    if id in _CATALOG:
        raise ValueError(f"duplicate rule id {id!r}")
    _CATALOG[id] = rule
    return rule


def catalog() -> dict[str, Rule]:
    """All registered rules, keyed by id."""
    return dict(_CATALOG)


# ---------------------------------------------------------------------------
# COV — race / coverage verification
# ---------------------------------------------------------------------------
COV_TILE_OVERLAP = _rule(
    "COV-TILE-OVERLAP", Severity.ERROR,
    "an output point is written by more than one thread block (write race)",
)
COV_TILE_GAP = _rule(
    "COV-TILE-GAP", Severity.ERROR,
    "an output point is written by no thread block (coverage hole)",
)
COV_REGTILE = _rule(
    "COV-REGTILE", Severity.ERROR,
    "register-tiled per-thread writes do not cover the block tile exactly once",
)
COV_PARTIAL_TILE = _rule(
    "COV-PARTIAL-TILE", Severity.WARNING,
    "grid not divisible by the effective tile (partial tiles; paper constraint (iv))",
)
COV_TEMPORAL_GHOST = _rule(
    "COV-TEMPORAL-GHOST", Severity.ERROR,
    "temporal-blocking ghost zone narrower than radius x time_steps "
    "(read-after-write hazard on intermediate steps)",
)
COV_SLAB_OVERLAP = _rule(
    "COV-SLAB-OVERLAP", Severity.ERROR,
    "slab decomposition: two GPUs own the same z-plane (write race)",
)
COV_SLAB_GAP = _rule(
    "COV-SLAB-GAP", Severity.ERROR,
    "slab decomposition: a z-plane is owned by no GPU",
)
COV_SLAB_GHOST = _rule(
    "COV-SLAB-GHOST", Severity.ERROR,
    "slab ghost zone narrower than the stencil radius at an interior interface",
)

# ---------------------------------------------------------------------------
# HALO — out-of-bounds halo analysis
# ---------------------------------------------------------------------------
HALO_GRID_SMALL = _rule(
    "HALO-GRID-SMALL", Severity.ERROR,
    "grid smaller than the stencil extent (2r+1) on some axis",
)
HALO_TAP_OOB = _rule(
    "HALO-TAP-OOB", Severity.ERROR,
    "a tap offset reaches outside the grid for every point of some plane",
)
HALO_TILE_EXCEEDS = _rule(
    "HALO-TILE-EXCEEDS", Severity.ERROR,
    "effective tile larger than the grid plane",
)
HALO_SMEM_SHORT = _rule(
    "HALO-SMEM-SHORT", Severity.ERROR,
    "declared shared-memory buffer smaller than the staged tile + halos "
    "(out-of-bounds shared writes)",
)
HALO_PROLOGUE = _rule(
    "HALO-PROLOGUE", Severity.WARNING,
    "register pipeline prologue consumes the whole z extent",
)

# ---------------------------------------------------------------------------
# MEM — coalescing and bank conflicts
# ---------------------------------------------------------------------------
MEM_BANK_CONFLICT = _rule(
    "MEM-BANK-CONFLICT", Severity.WARNING,
    "shared-tile pitch produces multi-way bank conflicts for column accesses",
)
MEM_DP_BANKS = _rule(
    "MEM-DP-BANKS", Severity.INFO,
    "8-byte elements serialize 2-way in 4-byte shared-memory banks (Fermi)",
)
MEM_UNCOALESCED_STRIP = _rule(
    "MEM-UNCOALESCED-STRIP", Severity.WARNING,
    "column-strip halo loads drag in whole lines per row (uncoalesced, "
    "partition-camped — the Fig 4 pattern)",
)
MEM_MISALIGNED = _rule(
    "MEM-MISALIGNED", Severity.INFO,
    "row region averages more transactions per row than its aligned minimum",
)

# ---------------------------------------------------------------------------
# RES — resource overflow / occupancy
# ---------------------------------------------------------------------------
RES_THREADS = _rule(
    "RES-THREADS", Severity.ERROR,
    "threads per block exceed the device limit",
)
RES_REGS = _rule(
    "RES-REGS", Severity.ERROR,
    "one block's register allocation exceeds the SM register file",
)
RES_SMEM = _rule(
    "RES-SMEM", Severity.ERROR,
    "shared-memory buffer exceeds the per-SM limit",
)
RES_NOFIT = _rule(
    "RES-NOFIT", Severity.ERROR,
    "no block of this shape fits an SM (zero occupancy)",
)
RES_SPILL = _rule(
    "RES-SPILL", Severity.WARNING,
    "register estimate above the per-thread cap: the kernel runs but spills",
)
RES_HALFWARP = _rule(
    "RES-HALFWARP", Severity.WARNING,
    "TX not a multiple of a half-warp (paper constraint (i): coalescing)",
)

# ---------------------------------------------------------------------------
# DSL — stencil-expression semantics
# ---------------------------------------------------------------------------
DSL_PARSE = _rule(
    "DSL-PARSE", Severity.ERROR,
    "stencil source does not parse (syntax, non-constant offset, bad term shape)",
)
DSL_UNDEF_GRID = _rule(
    "DSL-UNDEF-GRID", Severity.ERROR,
    "a tap or coefficient references a grid index outside [0, n_grids)",
)
DSL_ARITY = _rule(
    "DSL-ARITY", Severity.ERROR,
    "coefficient count does not match the declared radius/arity",
)
DSL_NO_CENTRE = _rule(
    "DSL-NO-CENTRE", Severity.WARNING,
    "an output has no centre tap (pure shift stencils defeat in-plane reuse)",
)
DSL_DUP_TAP = _rule(
    "DSL-DUP-TAP", Severity.WARNING,
    "one output sums the same (grid, offset) twice (fold the coefficients)",
)
DSL_ZERO_COEFF = _rule(
    "DSL-ZERO-COEFF", Severity.WARNING,
    "a tap has coefficient 0.0 (dead load)",
)
DSL_ASYM_Z = _rule(
    "DSL-ASYM-Z", Severity.INFO,
    "asymmetric z reach deepens the register pipeline beyond the radius",
)
DSL_POINTWISE = _rule(
    "DSL-POINTWISE", Severity.INFO,
    "radius-0 expression: a pointwise map, not a stencil",
)

# ---------------------------------------------------------------------------
# CFG — blocking-configuration well-formedness
# ---------------------------------------------------------------------------
CFG_POSITIVE = _rule(
    "CFG-POSITIVE", Severity.ERROR,
    "a blocking factor is zero or negative",
)
CFG_NONDIV = _rule(
    "CFG-NONDIV", Severity.WARNING,
    "candidate values not covered by the tuner's default space",
)

# ---------------------------------------------------------------------------
# SRC — emitted-source verification (generated text vs. the access-plan IR)
# ---------------------------------------------------------------------------
SRC_DELIM = _rule(
    "SRC-DELIM", Severity.ERROR,
    "generated source has unbalanced ()/{}/[] delimiters (truncated or "
    "mangled translation unit)",
)
SRC_TILE_DIM = _rule(
    "SRC-TILE-DIM", Severity.ERROR,
    "a baked tile/blocking constant disagrees with the access-plan IR, or "
    "the shared-tile declaration is missing",
)
SRC_BARRIER = _rule(
    "SRC-BARRIER", Severity.ERROR,
    "per-plane barrier count in the emitted text differs from the IR's "
    "synchronization points",
)
SRC_VEC = _rule(
    "SRC-VEC", Severity.ERROR,
    "vector-type width in the emitted loads differs from the IR's legal width",
)
SRC_LAUNCH_BOUNDS = _rule(
    "SRC-LAUNCH-BOUNDS", Severity.ERROR,
    "launch-bounds / work-group-size annotation missing or inconsistent "
    "with the IR's thread count",
)
SRC_QUEUE = _rule(
    "SRC-QUEUE", Severity.ERROR,
    "z-pipeline register state (z-column depth, partial-sum queue) differs "
    "from the IR's method",
)
SRC_DIALECT = _rule(
    "SRC-DIALECT", Severity.ERROR,
    "a foreign-dialect token survived translation (e.g. a CUDA-ism in the "
    "OpenCL output)",
)
SRC_ESTIMATE = _rule(
    "SRC-ESTIMATE", Severity.WARNING,
    "prediction header missing, unparsable, or naming a different kernel",
)
