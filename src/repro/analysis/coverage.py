"""Race / coverage verification.

The correctness contract of every kernel plan is that one sweep writes
every output point of the plane **exactly once**: a gap is a stale result,
an overlap is a write race between thread blocks.  For the axis-aligned
tilings this library launches the proof used to live in
:func:`repro.kernels.validate.check_exact_cover`, which literally paints an
LX x LY array — exact but O(area), and only able to talk about plain
thread tiles.

This module generalizes that proof three ways, while staying exact:

* **arbitrary rectangle sets** via a sweep-line over compressed x-spans
  (O(R log R) in the number of rectangles, independent of grid area), so
  register-tiled effective tiles, stride-mismatched launch grids and
  clipped partial tiles are all handled;
* **within-block register tiling** — the strided per-thread write pattern
  of section III-C-3 is checked to be a bijection onto the block tile;
* **temporal blocking and multi-GPU slabs** — ghost-zone sufficiency
  (read-after-write hazards across fused steps) and exact z-partition of
  slab decompositions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis import rules
from repro.analysis.diagnostics import Diagnostic
from repro.utils.maths import ceil_div

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.decompose import Slab
    from repro.kernels.base import KernelPlan


@dataclass(frozen=True)
class CoverResult:
    """Exact-cover verdict over a plane.

    ``gap_points`` / ``overlap_points`` count grid points covered zero /
    more-than-one times; the ``first_*`` fields name a witness point.
    """

    gap_points: int
    overlap_points: int
    first_gap: tuple[int, int] | None = None
    first_overlap: tuple[int, int] | None = None

    @property
    def exact(self) -> bool:
        return self.gap_points == 0 and self.overlap_points == 0


def check_rect_cover(
    lx: int, ly: int, rects: list[tuple[int, int, int, int]]
) -> CoverResult:
    """Prove ``rects`` (x0, y0, w, h) cover [0,lx) x [0,ly) exactly once.

    Rectangles are clipped to the plane first (a block computing a partial
    edge tile predicates its out-of-range threads off — that is not a
    hazard).  The sweep walks the compressed x-cuts; within each x-slab the
    active rectangles' y-intervals must partition [0, ly) with neither gap
    nor overlap.  Point counts are exact: slab width times the offending
    interval length.
    """
    clipped = []
    for x0, y0, w, h in rects:
        cx0, cy0 = max(x0, 0), max(y0, 0)
        cx1, cy1 = min(x0 + w, lx), min(y0 + h, ly)
        if cx0 < cx1 and cy0 < cy1:
            clipped.append((cx0, cy0, cx1, cy1))

    cuts = sorted({0, lx, *(r[0] for r in clipped), *(r[2] for r in clipped)})
    gap = overlap = 0
    first_gap: tuple[int, int] | None = None
    first_overlap: tuple[int, int] | None = None

    for xa, xb in zip(cuts, cuts[1:]):
        if xa >= lx or xb <= 0:
            continue
        width = xb - xa
        spans = sorted(
            (cy0, cy1) for cx0, cy0, cx1, cy1 in clipped if cx0 <= xa and cx1 >= xb
        )
        cursor = 0
        for y0, y1 in spans:
            if y0 > cursor:
                gap += width * (y0 - cursor)
                first_gap = first_gap or (xa, cursor)
            elif y0 < cursor:
                depth = min(cursor, y1) - y0
                overlap += width * depth
                first_overlap = first_overlap or (xa, y0)
            cursor = max(cursor, y1)
        if cursor < ly:
            gap += width * (ly - cursor)
            first_gap = first_gap or (xa, cursor)
    return CoverResult(gap, overlap, first_gap, first_overlap)


def plan_tile_rects(
    plan: "KernelPlan",
    grid_shape: tuple[int, int, int],
    stride_x: int | None = None,
    stride_y: int | None = None,
) -> list[tuple[int, int, int, int]]:
    """Output rectangles of every block the launch grid would schedule.

    ``stride_x`` / ``stride_y`` default to the effective tile (the correct
    launch); overriding them models a host driver whose launch-grid stride
    disagrees with the kernel's tile — the classic source of inter-block
    write races (stride < tile) and coverage holes (stride > tile).
    """
    lx, ly, _ = grid_shape
    tile_x, tile_y = plan.block.tile_x, plan.block.tile_y
    sx = stride_x or tile_x
    sy = stride_y or tile_y
    nx, ny = ceil_div(lx, sx), ceil_div(ly, sy)
    return [
        (bx * sx, by * sy, tile_x, tile_y)
        for by in range(ny)
        for bx in range(nx)
    ]


def tile_cover_diagnostics(
    plan: "KernelPlan",
    grid_shape: tuple[int, int, int],
    stride_x: int | None = None,
    stride_y: int | None = None,
) -> list[Diagnostic]:
    """COV-TILE-* and COV-PARTIAL-TILE over the plan's launch grid."""
    lx, ly, _ = grid_shape
    loc = plan.name
    result = check_rect_cover(lx, ly, plan_tile_rects(plan, grid_shape, stride_x, stride_y))
    out: list[Diagnostic] = []
    if result.overlap_points:
        out.append(rules.COV_TILE_OVERLAP.diag(
            loc,
            f"{result.overlap_points} of {lx}x{ly} points written by more "
            f"than one block (first at {result.first_overlap})",
            hint="launch-grid stride must equal the effective tile "
                 f"({plan.block.tile_x}x{plan.block.tile_y})",
        ))
    if result.gap_points:
        out.append(rules.COV_TILE_GAP.diag(
            loc,
            f"{result.gap_points} of {lx}x{ly} points written by no block "
            f"(first at {result.first_gap})",
            hint="launch-grid stride must equal the effective tile "
                 f"({plan.block.tile_x}x{plan.block.tile_y})",
        ))
    if result.exact and (lx % plan.block.tile_x or ly % plan.block.tile_y):
        out.append(rules.COV_PARTIAL_TILE.diag(
            loc,
            f"grid plane {lx}x{ly} not divisible by tile "
            f"{plan.block.tile_x}x{plan.block.tile_y}: edge blocks run "
            "partially predicated",
            hint="the paper's constraint (iv) excludes such configurations "
                 "from the tuning space",
        ))
    return out


def register_tile_cover(
    tx: int, rx: int, stride: int | None = None
) -> CoverResult:
    """Check the strided per-thread write pattern covers [0, tx*rx) once.

    Thread ``i`` writes elements ``i + k*stride`` for ``k < rx`` (section
    III-C-3 strided stores keep rows contiguous).  With ``stride == tx``
    (the correct choice) this is a bijection; any other stride leaves gaps
    and duplicates — the injectable within-block analogue of a launch-grid
    mismatch.
    """
    stride = tx if stride is None else stride
    extent = tx * rx
    counts: dict[int, int] = {}
    for i in range(tx):
        for k in range(rx):
            x = i + k * stride
            if 0 <= x < extent:
                counts[x] = counts.get(x, 0) + 1
    gaps = [x for x in range(extent) if x not in counts]
    dups = [x for x, c in counts.items() if c > 1]
    return CoverResult(
        gap_points=len(gaps),
        overlap_points=sum(counts[x] - 1 for x in dups),
        first_gap=(gaps[0], 0) if gaps else None,
        first_overlap=(min(dups), 0) if dups else None,
    )


def register_tile_diagnostics(
    plan: "KernelPlan",
    stride_x: int | None = None,
    stride_y: int | None = None,
) -> list[Diagnostic]:
    """COV-REGTILE along both axes of the per-thread write pattern."""
    out: list[Diagnostic] = []
    block = plan.block
    for axis, t, r, stride in (
        ("x", block.tx, block.rx, stride_x),
        ("y", block.ty, block.ry, stride_y),
    ):
        result = register_tile_cover(t, r, stride)
        if not result.exact:
            out.append(rules.COV_REGTILE.diag(
                plan.name,
                f"register-tile writes along {axis} cover "
                f"{result.gap_points} points zero times and "
                f"{result.overlap_points} points multiply "
                f"(T{axis.upper()}={t}, R{axis.upper()}={r}, "
                f"stride {stride if stride is not None else t})",
                hint=f"per-thread stores must stride by T{axis.upper()}",
            ))
    return out


def temporal_diagnostics(plan: "KernelPlan") -> list[Diagnostic]:
    """COV-TEMPORAL-GHOST for ghost-zone temporal blocking.

    A plan fusing T sweeps must enlarge its tile by ``r*T`` ghost cells per
    side: fused step t reads step t-1 values up to ``r`` cells beyond the
    rectangle it will itself produce, so a narrower ghost makes some step
    read cells the block never computed — values that, in the shared tile,
    are stale step t-2 data (a read-after-write hazard with respect to the
    owning neighbour block).
    """
    time_steps = getattr(plan, "time_steps", None)
    ghost_of = getattr(plan, "ghost", None)
    if time_steps is None or not callable(ghost_of):
        return []
    required = plan.halo_radius() * time_steps
    ghost = ghost_of()
    if ghost < required:
        return [rules.COV_TEMPORAL_GHOST.diag(
            plan.name,
            f"ghost zone {ghost} < radius*time_steps = {required}: fused "
            f"step {ghost // max(plan.halo_radius(), 1) + 1} reads cells "
            "this block never recomputed",
            hint="enlarge the ghost zone to r*T or lower time_steps",
        )]
    return []


def slab_diagnostics(
    slabs: list["Slab"], lz: int, radius: int
) -> list[Diagnostic]:
    """COV-SLAB-* for a multi-GPU z-slab decomposition.

    Owned ranges must partition [0, lz) exactly (an overlap is a write race
    between GPUs, a gap a stale region), and every interior interface needs
    ``radius`` ghost planes on both sides or the sweep reads planes the
    neighbour has already overwritten in the same step.
    """
    out: list[Diagnostic] = []
    ordered = sorted(slabs, key=lambda s: s.z_start)
    cursor = 0
    for slab in ordered:
        loc = f"slab[{slab.index}]"
        if slab.z_start > cursor:
            out.append(rules.COV_SLAB_GAP.diag(
                loc,
                f"planes [{cursor}, {slab.z_start}) owned by no slab",
            ))
        elif slab.z_start < cursor:
            out.append(rules.COV_SLAB_OVERLAP.diag(
                loc,
                f"planes [{slab.z_start}, {min(cursor, slab.z_stop)}) owned "
                "by two slabs",
            ))
        cursor = max(cursor, slab.z_stop)
    if cursor < lz:
        out.append(rules.COV_SLAB_GAP.diag(
            "slab[-]", f"planes [{cursor}, {lz}) owned by no slab"
        ))
    for prev, slab in zip(ordered, ordered[1:]):
        if slab.ghost_lo < radius:
            out.append(rules.COV_SLAB_GHOST.diag(
                f"slab[{slab.index}]",
                f"lower ghost {slab.ghost_lo} < radius {radius} at the "
                f"interface with slab[{prev.index}]",
                hint="the sweep would read neighbour planes already "
                     "overwritten this step",
            ))
        if prev.ghost_hi < radius:
            out.append(rules.COV_SLAB_GHOST.diag(
                f"slab[{prev.index}]",
                f"upper ghost {prev.ghost_hi} < radius {radius} at the "
                f"interface with slab[{slab.index}]",
                hint="the sweep would read neighbour planes already "
                     "overwritten this step",
            ))
    return out
