"""Resource-overflow pre-checks — the tuner's fast-reject path.

The executor discovers an unlaunchable configuration by building the full
timing pipeline and letting :func:`repro.gpusim.occupancy.compute_occupancy`
raise; these helpers make the same verdict from the workload record alone.

Two entry points with different contracts:

* :func:`launch_failure` — the *decision* function the tuners call.  It
  mirrors :func:`repro.gpusim.timing.time_kernel` exactly: registers are
  capped at the architectural per-thread limit first (spilling runs — it
  does not fail), then ``compute_occupancy`` itself is invoked.  Because it
  runs the identical code path, the static reject set provably equals the
  executor's :class:`~repro.errors.ResourceLimitError` set, which is what
  keeps every tuner's chosen optimum unchanged.
* :func:`resource_diagnostics` — the *explaining* function behind
  ``repro lint``, re-deriving each limit with its own rule id and the
  allocation-granularity arithmetic spelled out.  A test asserts its
  error verdict coincides with :func:`launch_failure` on the whole default
  tuning space.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis import rules
from repro.analysis.diagnostics import Diagnostic
from repro.errors import ResourceLimitError
from repro.gpusim.arch import HALF_WARP, WARP_SIZE
from repro.gpusim.occupancy import compute_occupancy
from repro.utils.maths import ceil_div, round_up

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpusim.device import DeviceSpec
    from repro.gpusim.workload import BlockWorkload
    from repro.kernels.base import KernelPlan


def effective_registers(regs_per_thread: int, device: "DeviceSpec") -> int:
    """Registers actually allocated per thread (the compiler spills above
    the cap; the excess becomes local-memory traffic, not a launch failure)."""
    return min(regs_per_thread, device.rules.max_regs_per_thread)


def launch_failure(
    workload: "BlockWorkload", device: "DeviceSpec"
) -> str | None:
    """Why this workload cannot launch, or ``None`` when it can.

    Exactly the reject set of the executor: the same register cap followed
    by the same :func:`compute_occupancy` call ``time_kernel`` makes.
    """
    try:
        compute_occupancy(
            device,
            workload.threads_per_block,
            effective_registers(workload.regs_per_thread, device),
            workload.smem_bytes,
        )
    except ResourceLimitError as exc:
        return str(exc)
    return None


def resource_diagnostics(
    plan: "KernelPlan", workload: "BlockWorkload", device: "DeviceSpec"
) -> list[Diagnostic]:
    """RES-* diagnostics for one workload on one device.

    The error-level findings re-derive, with the real allocation
    granularities, the limits :func:`compute_occupancy` enforces; the
    warnings cover conditions that launch but hurt (spilling, a TX that
    breaks the paper's coalescing constraint (i)).
    """
    out: list[Diagnostic] = []
    loc = plan.name
    rules_ = device.rules
    threads = workload.threads_per_block
    cap = rules_.max_regs_per_thread

    if workload.regs_per_thread > cap:
        out.append(rules.RES_SPILL.diag(
            loc,
            f"register estimate {workload.regs_per_thread}/thread exceeds "
            f"the {cap}-register cap on {device.name}: "
            f"{workload.regs_per_thread - cap} registers spill to local "
            "memory",
            hint="lower RX*RY; spilling runs but adds global traffic",
        ))
    if plan.block.tx % HALF_WARP:
        out.append(rules.RES_HALFWARP.diag(
            loc,
            f"TX={plan.block.tx} is not a multiple of a half-warp "
            f"({HALF_WARP}): row loads straddle lines on every tile",
            hint="constraint (i): pick TX from multiples of 16",
        ))

    if threads > device.max_threads_per_block:
        out.append(rules.RES_THREADS.diag(
            loc,
            f"{threads} threads/block exceeds the device limit "
            f"{device.max_threads_per_block} on {device.name}",
            hint="shrink TX*TY",
        ))
        return out  # the remaining arithmetic is meaningless

    warps = ceil_div(threads, WARP_SIZE)
    regs_per_warp = round_up(
        effective_registers(workload.regs_per_thread, device) * WARP_SIZE,
        rules_.register_alloc_granularity,
    )
    regs_per_block = regs_per_warp * warps
    smem_per_block = (
        round_up(workload.smem_bytes, rules_.smem_alloc_granularity)
        if workload.smem_bytes
        else 0
    )

    if regs_per_block > device.registers_per_sm:
        out.append(rules.RES_REGS.diag(
            loc,
            f"one block allocates {regs_per_block} registers "
            f"({regs_per_warp}/warp x {warps} warps) but the SM register "
            f"file holds {device.registers_per_sm} on {device.name}",
            hint="lower RX*RY or the block size",
        ))
    if smem_per_block > device.smem_per_sm:
        out.append(rules.RES_SMEM.diag(
            loc,
            f"one block needs {smem_per_block}B shared memory "
            f"(granularity-rounded) of the {device.smem_per_sm}B per SM "
            f"on {device.name}",
            hint="constraint (iii): shrink the tile",
        ))
    if not any(d.rule in (rules.RES_REGS.id, rules.RES_SMEM.id) for d in out):
        blocks = min(
            device.registers_per_sm // regs_per_block
            if regs_per_block else device.max_blocks_per_sm,
            device.smem_per_sm // smem_per_block
            if smem_per_block else device.max_blocks_per_sm,
            device.max_warps_per_sm // warps,
            device.max_blocks_per_sm,
        )
        if blocks < 1:
            out.append(rules.RES_NOFIT.diag(
                loc,
                f"no block of {threads} threads ({warps} warps) fits an SM "
                f"on {device.name}: zero occupancy",
            ))
    return out
