"""Static analysis of kernel plans, DSL programs and tuning configurations.

A rule-based analyzer that proves plan properties without executing a
sweep: exact tiling coverage (races / holes), halo sufficiency, coalescing
and bank-conflict behaviour, and device resource limits.  Diagnostics are
structured (:class:`Diagnostic`: rule id, severity, location, message, fix
hint) and aggregate into an :class:`AnalysisReport` with stable exit codes
for the ``repro lint`` CLI.

Three integration layers consume it:

* ``repro lint`` — text/JSON reports over plans and DSL source;
* the tuners — :func:`repro.analysis.resources.launch_failure` as a
  fast-reject pre-filter provably equivalent to the executor's
  :class:`~repro.errors.ResourceLimitError` set;
* codegen — :func:`gate_codegen` refuses to emit error-level plans.

Two further passes ride on the access-plan IR (:mod:`repro.analysis.planir`)
that every emitter lowers through: the emitted-source verifier
(:func:`analyze_emitted`, the ``SRC-*`` family) and the codegen-time
performance estimator (:mod:`repro.analysis.estimate`).

The rule catalog lives in :mod:`repro.analysis.rules`; the user-facing
version is ``docs/ANALYSIS.md``.
"""

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analysis.engine import (
    analyze_emitted,
    analyze_expr,
    analyze_plan,
    analyze_slabs,
    analyze_source,
    gate_codegen,
)
from repro.analysis.estimate import (
    PerfEstimate,
    estimate_ir,
    estimate_plan,
    prediction_header,
    reconcile_profile,
)
from repro.analysis.planir import AccessPlanIR, LoweringError, lower_plan
from repro.analysis.resources import launch_failure
from repro.analysis.rules import Rule, catalog

__all__ = [
    "AccessPlanIR",
    "AnalysisReport",
    "Diagnostic",
    "LoweringError",
    "PerfEstimate",
    "Rule",
    "Severity",
    "analyze_emitted",
    "analyze_expr",
    "analyze_plan",
    "analyze_slabs",
    "analyze_source",
    "catalog",
    "estimate_ir",
    "estimate_plan",
    "gate_codegen",
    "launch_failure",
    "lower_plan",
    "prediction_header",
    "reconcile_profile",
]
