"""Static coalescing and shared-memory bank-conflict lint.

Two closed forms, each cross-validated in the property tests against a
brute-force enumerator so the lint's verdicts are *checked*, not guessed:

* :func:`analytic_conflict_degree` — the serialization factor of a strided
  shared-memory access, in closed form over gcd(stride, banks); agrees
  exactly with the counting loop in :func:`repro.gpusim.smem.conflict_degree`.
* Region verdicts — read from the :class:`~repro.gpusim.memory.RegionRecord`
  geometry the load builders attach to every workload, whose phase-averaged
  transaction counts agree exactly with the lane-by-lane
  :func:`repro.gpusim.trace.average_region_trace` enumerator.

The lint is *static* in the useful sense: it never prices a cycle, it only
compares each region's transaction count against the aligned minimum the
same bytes could have cost.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.analysis import rules
from repro.analysis.diagnostics import Diagnostic
from repro.gpusim.arch import WARP_SIZE
from repro.gpusim.memory import RegionRecord
from repro.gpusim.smem import dp_conflict_factor, padded_pitch_words
from repro.utils.maths import ceil_div

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpusim.device import DeviceSpec
    from repro.gpusim.workload import BlockWorkload
    from repro.kernels.base import KernelPlan


def analytic_conflict_degree(
    stride_words: int, *, lanes: int = WARP_SIZE, banks: int = 32
) -> int:
    """Closed-form bank-conflict degree for a strided warp access.

    Lane ``i`` reads word ``i * stride``; lanes ``i`` and ``j`` collide in
    a bank exactly when ``i = j (mod banks / gcd(stride, banks))``, so the
    worst bank serves ``ceil(lanes / (banks / gcd))`` distinct words.  A
    stride of zero is a broadcast (degree 1).  Must agree exactly with the
    brute-force :func:`repro.gpusim.smem.conflict_degree` — enforced by a
    property test over the full argument space.
    """
    if lanes <= 0:
        raise ValueError("lanes must be positive")
    if banks <= 0:
        raise ValueError("banks must be positive")
    if stride_words == 0:
        return 1
    period = banks // math.gcd(abs(stride_words), banks)
    return ceil_div(lanes, period)


def pitch_conflict_diagnostics(
    pitch_words: int,
    location: str,
    *,
    lanes: int = WARP_SIZE,
    banks: int = 32,
) -> list[Diagnostic]:
    """MEM-BANK-CONFLICT when a column walk of ``pitch_words`` serializes."""
    degree = analytic_conflict_degree(pitch_words, lanes=lanes, banks=banks)
    if degree <= 1:
        return []
    return [rules.MEM_BANK_CONFLICT.diag(
        location,
        f"tile pitch of {pitch_words} words puts {degree} lanes of a "
        f"column access in the same bank ({degree}-way serialization)",
        hint=f"pad the pitch to {pitch_words | 1 if pitch_words % 2 == 0 else pitch_words + 2} "
             "words (an odd pitch is coprime to the bank count)",
    )]


def smem_tile_diagnostics(
    plan: "KernelPlan", device: "DeviceSpec | None" = None
) -> list[Diagnostic]:
    """Bank-conflict lint of the plan's shared-tile layout.

    Recomputes the pitch exactly as
    :meth:`~repro.kernels.base.KernelPlan.smem_tile_bytes` chooses it and
    checks the column-access stride; with the +1-word padding policy this
    is clean by construction, so a finding here means a subclass changed
    the layout.  On 4-byte-bank parts, 8-byte elements additionally
    serialize two ways regardless of pitch (MEM-DP-BANKS, informational).
    """
    r = plan.halo_radius()
    width_words = ((plan.block.tile_x + 2 * r) * plan.elem_bytes + 3) // 4
    pitch = padded_pitch_words(width_words)
    out = pitch_conflict_diagnostics(pitch, plan.name)
    if (
        device is not None
        and plan.elem_bytes == 8
        and dp_conflict_factor(8, device.rules) > 1.0
    ):
        out.append(rules.MEM_DP_BANKS.diag(
            plan.name,
            "8-byte elements span two 4-byte banks on "
            f"{device.name}: shared accesses serialize 2-way",
            hint="inherent to DP on Fermi; not a layout defect",
        ))
    return out


def _min_row_transactions(record: RegionRecord, line_bytes: int) -> int:
    """Lines a perfectly aligned row of this region would cost."""
    return ceil_div(record.width_elems * record.elem_bytes, line_bytes)


def region_diagnostics(
    workload: "BlockWorkload", location: str
) -> list[Diagnostic]:
    """MEM-UNCOALESCED-STRIP / MEM-MISALIGNED over recorded load regions.

    Works from the geometry records the builders in
    :mod:`repro.kernels.loads` attach to the workload's
    :class:`~repro.gpusim.memory.MemoryStats`; a workload built without the
    builders simply has nothing to lint.
    """
    out: list[Diagnostic] = []
    mem = workload.memory
    strips = [r for r in mem.regions if r.camped]
    if strips:
        tx = sum(r.avg_row_transactions * r.rows for r in strips)
        useful = sum(
            r.width_elems * r.elem_bytes * r.rows for r in strips
        )
        moved = tx * mem.line_bytes
        out.append(rules.MEM_UNCOALESCED_STRIP.diag(
            location,
            f"{len(strips)} column-strip/corner region(s) drag in whole "
            f"{mem.line_bytes}B lines per row: {useful}B useful of "
            f"{moved:.0f}B moved ({useful / moved:.0%} efficient), all of "
            "it partition-camped",
            hint="merge the side halos into the row loads "
                 "(horizontal/fullslice variants)",
        ))
    for record in mem.regions:
        if record.camped:
            continue
        floor = _min_row_transactions(record, mem.line_bytes)
        if record.avg_row_transactions > floor + 1e-9:
            out.append(rules.MEM_MISALIGNED.diag(
                location,
                f"{record.kind} region ({record.width_elems} elems x "
                f"{record.rows} rows at x={record.x_start_rel}) averages "
                f"{record.avg_row_transactions:.2f} transactions/row; a "
                f"line-aligned start would cost {floor}",
                hint="re-aim the layout's aligned_x at this region's start "
                     "(only one region can win)",
            ))
    return out
