"""The access-plan IR: the backend-neutral contract between plans and emitters.

Every code generator in :mod:`repro.codegen` used to derive its constants
(tile dims, padded pitch, vector width, register-queue depth) privately
from the :class:`~repro.kernels.symmetric.SymmetricKernelPlan` it was
handed, which left nothing for a verifier to cross-check the emitted text
against.  :func:`lower_plan` now produces one :class:`AccessPlanIR` — the
per-plane load/store rectangles, aggregate traffic totals, shared-tile
geometry with its bank-pad pitch, barrier points and the z-pipeline
register-queue depths — and the CUDA, OpenCL and HIP emitters all consume
*it* rather than the plan.  Two static passes ride on the same record:

* the emitted-source verifier (:mod:`repro.analysis.srcverify`) re-parses
  each generated translation unit and cross-checks it against the IR
  (the ``SRC-*`` rule family);
* the codegen-time performance estimator (:mod:`repro.analysis.estimate`)
  prices the IR with the very model the simulator uses —
  :meth:`AccessPlanIR.to_workload` reconstructs the plan's
  :class:`~repro.gpusim.workload.BlockWorkload` field-for-field, so the
  estimator's transaction counts are exact against
  :mod:`repro.obs.counters` *by construction* (test-enforced).

Lowering never prices a cycle and needs no device: the supported kernel
families declare their per-block workload from geometry alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, cast

from repro.gpusim.memory import MemoryStats, RegionRecord
from repro.gpusim.smem import SmemAccessProfile, padded_pitch_words
from repro.gpusim.workload import BlockWorkload, GridWorkload
from repro.kernels.inplane import InPlaneKernel
from repro.kernels.layout import blocks_in_plane
from repro.kernels.nvstencil import NvStencilKernel
from repro.kernels.symmetric import SymmetricKernelPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpusim.device import DeviceSpec

#: The grid every emitter assumes when none is given — the paper's
#: 512 x 512 x 256 evaluation volume.  Only the alignment *phase* of this
#: grid reaches the IR (vector widths, transaction averages), so lowering
#: at the default is representative of any line-aligned grid.
DEFAULT_GRID: tuple[int, int, int] = (512, 512, 256)

#: Barriers per z-plane: one after the cooperative load, one after compute.
BARRIERS_PER_PLANE = 2

METHOD_INPLANE = "inplane"
METHOD_FORWARD = "forward"


class LoweringError(ValueError):
    """The plan's declared traffic disagrees with its own region records."""


@dataclass(frozen=True)
class IRRegion:
    """One per-plane load/store rectangle, mirrored from the plan's
    :class:`~repro.gpusim.memory.RegionRecord` with the access direction
    made explicit."""

    op: str                     #: ``"load"`` or ``"store"``
    kind: str                   #: interior / halo / write / spill
    x_start_rel: int            #: x offset of the rectangle vs the tile origin
    width_elems: int
    rows: int
    tile_stride: int
    elem_bytes: int
    vec_width: int              #: vector width the row decomposition used
    avg_row_transactions: float  #: phase-averaged lines per row
    camped: bool = False        #: partition-camped (column-walking) traffic

    @property
    def transactions(self) -> float:
        """Total transaction lines this rectangle was charged with."""
        return self.avg_row_transactions * self.rows

    def to_record(self) -> RegionRecord:
        return RegionRecord(
            kind=self.kind,
            x_start_rel=self.x_start_rel,
            width_elems=self.width_elems,
            rows=self.rows,
            tile_stride=self.tile_stride,
            elem_bytes=self.elem_bytes,
            vec_width=self.vec_width,
            avg_row_transactions=self.avg_row_transactions,
            camped=self.camped,
        )


@dataclass(frozen=True)
class SmemTileIR:
    """Shared-tile geometry: logical extent plus the bank-padded pitch."""

    width_elems: int            #: TILE_X + 2r (logical row length)
    rows: int                   #: TILE_Y + 2r
    pitch_words: int            #: padded pitch in 4-byte bank words
    pitch_elems: int            #: the ``TILE_PITCH`` constant emitters bake
    elem_bytes: int
    bytes: int                  #: allocation the plan declares (pitch x rows)


@dataclass(frozen=True)
class TrafficIR:
    """Per-block, per-plane global-traffic aggregates.

    These are the exact :class:`~repro.gpusim.memory.MemoryStats` totals
    the plan declared — including the interior/halo split of merged
    regions, which the per-region geometry alone cannot recover (the
    ``halo_fraction`` reclassification happens at aggregation time).
    """

    line_bytes: int
    load_instructions: float
    store_instructions: float
    load_transactions: float
    store_transactions: float
    requested_load_bytes: float
    requested_store_bytes: float
    interior_transferred_bytes: float
    halo_transferred_bytes: float
    store_transferred_bytes: float
    spill_transferred_bytes: float
    load_phases: int
    camped_bytes: float


@dataclass(frozen=True)
class AccessPlanIR:
    """One kernel plan, lowered: everything an emitter bakes into source
    and everything the estimator needs to price it."""

    # --- identity -----------------------------------------------------
    kernel: str                 #: the emitted symbol name
    family: str                 #: ``"inplane"`` / ``"nvstencil"``
    variant: str                #: loading variant (``"fullslice"``, ...)
    method: str                 #: ``"inplane"`` or ``"forward"``
    order: int
    radius: int
    dtype: str                  #: ``"sp"`` / ``"dp"``
    ctype: str                  #: ``"float"`` / ``"double"``
    elem_bytes: int
    block: tuple[int, int, int, int]   #: (TX, TY, RX, RY)
    threads: int
    grid_shape: tuple[int, int, int]
    aligned_x: int              #: x index the array padding line-aligns
    coefficients: tuple[float, ...]

    # --- emitted structure --------------------------------------------
    vector_width: int           #: widest legal vector for the dominant row
    tile: SmemTileIR
    zqueue_depth: int           #: z register column: r (in-plane) / 2r+1
    queue_depth: int            #: partial-sum queue: r (in-plane) / 0
    barriers_per_plane: int
    launch_bounds: tuple[int, int]

    # --- traffic ------------------------------------------------------
    regions: tuple[IRRegion, ...]
    traffic: TrafficIR

    # --- workload reconstruction --------------------------------------
    regs_per_thread: int
    smem_bytes: int
    points_per_plane: int
    flops_per_point: float
    arith_instructions_per_point: float | None
    extra_instructions: int
    ilp: float
    prologue_planes: int
    syncs_per_plane: int
    smem_read_instructions: int
    smem_write_instructions: int
    smem_conflict_factor: float

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def to_memory_stats(self) -> MemoryStats:
        """Rebuild the plan's per-plane :class:`MemoryStats` exactly."""
        t = self.traffic
        stats = MemoryStats(line_bytes=t.line_bytes)
        stats.load_instructions = t.load_instructions  # type: ignore[assignment]
        stats.store_instructions = t.store_instructions  # type: ignore[assignment]
        stats.load_transactions = t.load_transactions  # type: ignore[assignment]
        stats.store_transactions = t.store_transactions  # type: ignore[assignment]
        stats.requested_load_bytes = t.requested_load_bytes  # type: ignore[assignment]
        stats.requested_store_bytes = t.requested_store_bytes  # type: ignore[assignment]
        stats.interior_transferred_bytes = t.interior_transferred_bytes  # type: ignore[assignment]
        stats.halo_transferred_bytes = t.halo_transferred_bytes  # type: ignore[assignment]
        stats.store_transferred_bytes = t.store_transferred_bytes  # type: ignore[assignment]
        stats.spill_transferred_bytes = t.spill_transferred_bytes  # type: ignore[assignment]
        stats.load_phases = t.load_phases
        stats.camped_bytes = t.camped_bytes
        stats.regions = [region.to_record() for region in self.regions]
        return stats

    def to_workload(self) -> BlockWorkload:
        """Rebuild the plan's :class:`BlockWorkload` field-for-field.

        This equality (``lower_plan(p, g).to_workload() ==
        p.block_workload(device, g)``) is what makes every estimator
        quantity derived downstream exact against the simulator — the IR
        carries the *entire* priced surface of the plan, not a summary.
        """
        return BlockWorkload(
            threads_per_block=self.threads,
            regs_per_thread=self.regs_per_thread,
            smem_bytes=self.smem_bytes,
            elem_bytes=self.elem_bytes,
            points_per_plane=self.points_per_plane,
            flops_per_point=self.flops_per_point,
            arith_instructions_per_point=self.arith_instructions_per_point,
            memory=self.to_memory_stats(),
            smem_profile=SmemAccessProfile(
                read_instructions=self.smem_read_instructions,
                write_instructions=self.smem_write_instructions,
                conflict_factor=self.smem_conflict_factor,
            ),
            extra_instructions=self.extra_instructions,
            ilp=self.ilp,
            prologue_planes=self.prologue_planes,
            syncs_per_plane=self.syncs_per_plane,
        )

    def grid_workload(
        self, grid_shape: tuple[int, int, int] | None = None
    ) -> GridWorkload:
        """Block/plane/point counts of one sweep (Eqn (6))."""
        lx, ly, lz = grid_shape or self.grid_shape
        tx, ty, rx, ry = self.block
        return GridWorkload(
            blocks=blocks_in_plane(lx, ly, tx * rx, ty * ry),
            planes=lz,
            total_points=lx * ly * lz,
        )

    def to_json_obj(self) -> dict[str, Any]:
        """Flat JSON-ready rendering (CLI/introspection; not a schema)."""
        return {
            "kernel": self.kernel,
            "family": self.family,
            "variant": self.variant,
            "method": self.method,
            "order": self.order,
            "dtype": self.dtype,
            "block": list(self.block),
            "grid_shape": list(self.grid_shape),
            "vector_width": self.vector_width,
            "tile": {
                "width_elems": self.tile.width_elems,
                "rows": self.tile.rows,
                "pitch_elems": self.tile.pitch_elems,
                "bytes": self.tile.bytes,
            },
            "zqueue_depth": self.zqueue_depth,
            "queue_depth": self.queue_depth,
            "barriers_per_plane": self.barriers_per_plane,
            "regions": [
                {
                    "op": r.op,
                    "kind": r.kind,
                    "x_start_rel": r.x_start_rel,
                    "width_elems": r.width_elems,
                    "rows": r.rows,
                    "vec_width": r.vec_width,
                    "transactions": r.transactions,
                    "camped": r.camped,
                }
                for r in self.regions
            ],
            "load_transactions": self.traffic.load_transactions,
            "store_transactions": self.traffic.store_transactions,
        }


def plan_vector_width(
    plan: SymmetricKernelPlan, grid_shape: tuple[int, int, int] = DEFAULT_GRID
) -> int:
    """Widest legal vector for the variant's dominant merged row.

    Only the alignment phase of ``grid_shape`` matters (the layout's
    line-aligned pitch makes the phase grid-size-invariant), so the
    default grid answers for every launch.
    """
    if isinstance(plan, NvStencilKernel) or not getattr(plan, "use_vectors", False):
        return 1
    r = plan.spec.radius
    if plan.variant in ("fullslice", "horizontal"):
        layout = plan.layout(grid_shape, aligned_x=-r)
        return layout.vector_width_for(-r, plan.block.tile_x + 2 * r, plan.block.tile_x)
    layout0 = plan.layout(grid_shape, aligned_x=0)
    return layout0.vector_width_for(0, plan.block.tile_x, plan.block.tile_x)


def kernel_symbol(plan: SymmetricKernelPlan) -> str:
    """The emitted kernel symbol: ``{family}_{variant}_o{N}_{sp|dp}_{config}``."""
    block = plan.block
    return (
        f"{plan.family}_{plan.variant}"
        f"_o{plan.spec.order}_{plan.dtype_name}"
        f"_{block.tx}x{block.ty}x{block.rx}x{block.ry}"
    )


def _check_region_sums(regions: tuple[IRRegion, ...], traffic: TrafficIR) -> None:
    """Lowering self-check: per-region transactions must sum to the totals.

    The plan appends one geometry record per region *and* accumulates the
    aggregate counters separately; if the two ever diverged (a builder
    forgetting its record, or double-counting), every downstream
    cross-check would silently compare against the wrong geometry.
    """
    region_tx = sum(r.transactions for r in regions)
    total_tx = traffic.load_transactions + traffic.store_transactions
    if abs(region_tx - total_tx) > 1e-9 * max(1.0, total_tx):
        raise LoweringError(
            f"region transaction sum {region_tx!r} disagrees with the "
            f"declared totals {total_tx!r}"
        )


def lower_plan(
    plan: SymmetricKernelPlan,
    grid_shape: tuple[int, int, int] = DEFAULT_GRID,
) -> AccessPlanIR:
    """Lower one symmetric kernel plan to its access-plan IR.

    Raises ``TypeError`` for plan families outside the emitter set and
    :class:`LoweringError` when the plan's declared aggregates disagree
    with its own region records (a kernel-model bug, not a user error).
    """
    if not isinstance(plan, (InPlaneKernel, NvStencilKernel)):
        raise TypeError(
            f"access-plan lowering supports the symmetric in-plane and "
            f"nvstencil kernels, not {type(plan).__name__}"
        )
    inplane = isinstance(plan, InPlaneKernel)
    r = plan.spec.radius
    block = plan.block

    # The supported families declare their workload from geometry alone —
    # the contract takes a device parameter for families that may need
    # one, but these never read it, which is precisely what makes the IR
    # (and the estimator riding on it) a pure function of the plan.
    workload = plan.block_workload(cast("DeviceSpec", None), grid_shape)
    mem = workload.memory

    regions: list[IRRegion] = []
    for rec in mem.regions:
        regions.append(IRRegion(
            op="store" if rec.kind == "write" else "load",
            kind=rec.kind,
            x_start_rel=rec.x_start_rel,
            width_elems=rec.width_elems,
            rows=rec.rows,
            tile_stride=rec.tile_stride,
            elem_bytes=rec.elem_bytes,
            vec_width=rec.vec_width,
            avg_row_transactions=rec.avg_row_transactions,
            camped=rec.camped,
        ))

    traffic = TrafficIR(
        line_bytes=mem.line_bytes,
        load_instructions=mem.load_instructions,
        store_instructions=mem.store_instructions,
        load_transactions=mem.load_transactions,
        store_transactions=mem.store_transactions,
        requested_load_bytes=mem.requested_load_bytes,
        requested_store_bytes=mem.requested_store_bytes,
        interior_transferred_bytes=mem.interior_transferred_bytes,
        halo_transferred_bytes=mem.halo_transferred_bytes,
        store_transferred_bytes=mem.store_transferred_bytes,
        spill_transferred_bytes=mem.spill_transferred_bytes,
        load_phases=mem.load_phases,
        camped_bytes=mem.camped_bytes,
    )

    tile_width = block.tile_x + 2 * r
    width_words = (tile_width * plan.elem_bytes + 3) // 4
    pitch_words = padded_pitch_words(width_words)
    tile = SmemTileIR(
        width_elems=tile_width,
        rows=block.tile_y + 2 * r,
        pitch_words=pitch_words,
        pitch_elems=pitch_words * 4 // plan.elem_bytes,
        elem_bytes=plan.elem_bytes,
        bytes=workload.smem_bytes,
    )

    smem = workload.smem_profile
    ir = AccessPlanIR(
        kernel=kernel_symbol(plan),
        family=plan.family,
        variant=plan.variant,
        method=METHOD_INPLANE if inplane else METHOD_FORWARD,
        order=plan.spec.order,
        radius=r,
        dtype=plan.dtype_name,
        ctype="float" if plan.elem_bytes == 4 else "double",
        elem_bytes=plan.elem_bytes,
        block=(block.tx, block.ty, block.rx, block.ry),
        threads=block.threads,
        grid_shape=grid_shape,
        aligned_x=(
            plan._aligned_x() if isinstance(plan, InPlaneKernel) else 0
        ),
        coefficients=tuple(plan.spec.coefficients),
        vector_width=plan_vector_width(plan, grid_shape),
        tile=tile,
        zqueue_depth=r if inplane else 2 * r + 1,
        queue_depth=r if inplane else 0,
        barriers_per_plane=BARRIERS_PER_PLANE,
        launch_bounds=(block.threads, 1),
        regions=tuple(regions),
        traffic=traffic,
        regs_per_thread=workload.regs_per_thread,
        smem_bytes=workload.smem_bytes,
        points_per_plane=workload.points_per_plane,
        flops_per_point=workload.flops_per_point,
        arith_instructions_per_point=workload.arith_instructions_per_point,
        extra_instructions=workload.extra_instructions,
        ilp=workload.ilp,
        prologue_planes=workload.prologue_planes,
        syncs_per_plane=workload.syncs_per_plane,
        smem_read_instructions=smem.read_instructions,
        smem_write_instructions=smem.write_instructions,
        smem_conflict_factor=smem.conflict_factor,
    )
    _check_region_sums(ir.regions, ir.traffic)
    return ir
