"""Codegen-time performance estimation from the access-plan IR.

Following the "performance estimation during code generation" idea of
Ernst et al. (PAPERS.md), every generated translation unit carries a
structured prediction header: the transactions, DRAM bytes, shared-memory
replay rate, occupancy and named limiter the kernel *will* exhibit on a
device, computed before any simulation runs.

The estimator is deliberately not a second model.  It reconstructs the
plan's :class:`~repro.gpusim.workload.BlockWorkload` from the IR
(:meth:`~repro.analysis.planir.AccessPlanIR.to_workload`) and prices it
with the public simulator entry points — :func:`repro.gpusim.timing.time_kernel`
and :func:`repro.obs.counters.derive_counters` — so its transaction counts
and DRAM bytes are **exact** against the profiler's counters by
construction, and any drift between the IR and the kernel model surfaces
as a reconciliation failure rather than a silently wrong comment.

:func:`reconcile_profile` is that cross-check at repository scale: every
record of ``BENCH_profile.json`` is resimulated and compared
value-for-value with the estimate derived from its plan's IR
(faulted records are skipped, mirroring the regression sentinel — fault
injection perturbs *measurement*, never the prediction).  ``tools/check.py``
runs it as a required gate.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

from repro.analysis.planir import DEFAULT_GRID, AccessPlanIR, lower_plan
from repro.errors import ReproError
from repro.gpusim.device import DeviceSpec, get_device
from repro.gpusim.timing import params_for, time_kernel
from repro.obs.counters import derive_counters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernels.symmetric import SymmetricKernelPlan

#: Device the prediction header assumes when codegen gets none — the
#: paper's primary evaluation GPU.
DEFAULT_DEVICE = "gtx580"

#: Marker of the structured comment line attached to generated sources.
HEADER_PREFIX = "// repro.estimate:"

#: Estimate fields that must match the measured counters bit-for-bit on a
#: fault-free record (same floating-point expressions on identical inputs).
EXACT_FIELDS: tuple[str, ...] = (
    "gld_transactions",
    "gst_transactions",
    "dram_bytes",
    "shared_replay_rate",
    "achieved_occupancy",
)


@dataclass(frozen=True)
class PerfEstimate:
    """One kernel's predicted launch behaviour on one device/grid."""

    kernel: str
    device: str
    grid_shape: tuple[int, int, int]
    mpoints_per_s: float
    total_cycles: float
    gld_transactions: float
    gst_transactions: float
    dram_bytes: float
    dram_bw_fraction: float
    gld_efficiency: float
    shared_replay_rate: float
    achieved_occupancy: float
    limiter: str

    def to_json_obj(self) -> dict[str, Any]:
        return {
            "kernel": self.kernel,
            "device": self.device,
            "grid": list(self.grid_shape),
            "mpoints_per_s": self.mpoints_per_s,
            "total_cycles": self.total_cycles,
            "gld_transactions": self.gld_transactions,
            "gst_transactions": self.gst_transactions,
            "dram_bytes": self.dram_bytes,
            "dram_bw_fraction": self.dram_bw_fraction,
            "gld_efficiency": self.gld_efficiency,
            "shared_replay_rate": self.shared_replay_rate,
            "achieved_occupancy": self.achieved_occupancy,
            "limiter": self.limiter,
        }

    def render(self) -> str:
        lx, ly, lz = self.grid_shape
        return "\n".join([
            f"estimate {self.kernel} on {self.device} ({lx}x{ly}x{lz}):",
            f"  predicted rate     : {self.mpoints_per_s:,.1f} MPoint/s",
            f"  total cycles       : {self.total_cycles:,.0f}",
            f"  gld transactions   : {self.gld_transactions:,.1f}",
            f"  gst transactions   : {self.gst_transactions:,.1f}",
            f"  DRAM bytes         : {self.dram_bytes:,.0f}"
            f" ({self.dram_bw_fraction:.1%} of measured bandwidth)",
            f"  load efficiency    : {self.gld_efficiency:.1%}",
            f"  smem replay rate   : {self.shared_replay_rate:.4f}",
            f"  occupancy          : {self.achieved_occupancy:.1%}"
            f" (limited by {self.limiter})",
        ])


def estimate_ir(
    ir: AccessPlanIR,
    device: "DeviceSpec | str" = DEFAULT_DEVICE,
    grid_shape: tuple[int, int, int] | None = None,
) -> PerfEstimate:
    """Price one access-plan IR on ``device`` without executing a sweep.

    May raise :class:`~repro.errors.ResourceLimitError` when no block of
    the IR's shape fits the device — the same refusal the executor gives.
    """
    dev = get_device(device) if isinstance(device, str) else device
    shape = grid_shape or ir.grid_shape
    workload = ir.to_workload()
    grid = ir.grid_workload(shape)
    timing = time_kernel(workload, grid, dev)
    counters = derive_counters(timing, workload, grid, dev, params_for(dev))
    time_s = timing.total_cycles / dev.clock_hz
    return PerfEstimate(
        kernel=ir.kernel,
        device=dev.name,
        grid_shape=shape,
        mpoints_per_s=grid.total_points / time_s / 1e6,
        total_cycles=timing.total_cycles,
        gld_transactions=counters["gld_transactions"],
        gst_transactions=counters["gst_transactions"],
        dram_bytes=counters["dram_bytes"],
        dram_bw_fraction=counters["dram_bw_fraction"],
        gld_efficiency=counters["gld_efficiency"],
        shared_replay_rate=counters["shared_replay_rate"],
        achieved_occupancy=counters["achieved_occupancy"],
        limiter=counters.occupancy_limiter,
    )


def estimate_plan(
    plan: "SymmetricKernelPlan",
    device: "DeviceSpec | str" = DEFAULT_DEVICE,
    grid_shape: tuple[int, int, int] = DEFAULT_GRID,
) -> PerfEstimate:
    """Lower ``plan`` and price it — the one-call form."""
    return estimate_ir(lower_plan(plan, grid_shape), device, grid_shape)


def try_estimate(
    plan: "SymmetricKernelPlan",
    device: "DeviceSpec | str" = DEFAULT_DEVICE,
    grid_shape: tuple[int, int, int] = DEFAULT_GRID,
) -> tuple[PerfEstimate | None, str | None]:
    """:func:`estimate_plan` as a non-raising ``(estimate, refusal)`` pair.

    The trial archive (:mod:`repro.obs.archive`) records either the
    estimate or the exact refusal for every evaluated config; returning
    the refusal as ``"ErrorType: message"`` keeps that record a pure,
    serializable function of the plan.
    """
    try:
        return estimate_plan(plan, device, grid_shape), None
    except ReproError as exc:
        return None, f"{type(exc).__name__}: {exc}"


# ---------------------------------------------------------------------------
# The structured source header
# ---------------------------------------------------------------------------
def prediction_header(
    ir: AccessPlanIR,
    device: "DeviceSpec | str" = DEFAULT_DEVICE,
    grid_shape: tuple[int, int, int] | None = None,
) -> str:
    """The ``// repro.estimate: {...}`` line emitters attach to sources.

    Values are kept at full precision (the reconciliation gate compares
    them bit-for-bit against the profiler counters); an IR that cannot
    launch on the assumed device yields an ``"unavailable"`` header with
    the refusal attached instead of failing code generation.
    """
    try:
        est = estimate_ir(ir, device, grid_shape)
    except ReproError as exc:
        payload: dict[str, Any] = {
            "kernel": ir.kernel,
            "device": device if isinstance(device, str) else device.name,
            "unavailable": str(exc),
        }
        return f"{HEADER_PREFIX} {json.dumps(payload, sort_keys=True)}"
    return f"{HEADER_PREFIX} {json.dumps(est.to_json_obj(), sort_keys=True)}"


def parse_header(text: str) -> dict[str, Any] | None:
    """Extract the prediction payload from a generated source.

    Returns ``None`` when no header line is present; raises
    ``ValueError`` when a header is present but its payload is not valid
    JSON (a tampered or truncated source).
    """
    match = re.search(rf"^{re.escape(HEADER_PREFIX)} (.+)$", text, re.MULTILINE)
    if match is None:
        return None
    payload = json.loads(match.group(1))
    if not isinstance(payload, dict):
        raise ValueError("prediction header payload must be a JSON object")
    return payload


# ---------------------------------------------------------------------------
# Estimator <-> counters reconciliation over a recorded trajectory
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FieldMismatch:
    """One estimate field that disagreed with the measured counter."""

    field: str
    predicted: float | str
    measured: float | str

    def render(self) -> str:
        return f"{self.field}: predicted {self.predicted!r} != measured {self.measured!r}"


@dataclass(frozen=True)
class RecordReconcile:
    """Reconciliation outcome of one trajectory record."""

    kernel: str
    device: str
    mismatches: tuple[FieldMismatch, ...]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        detail = "; ".join(m.render() for m in self.mismatches)
        return f"MISMATCH {self.kernel} on {self.device}: {detail}"


@dataclass(frozen=True)
class ReconcileReport:
    """Whole-baseline estimator/counters (and IR/source) reconciliation."""

    baseline_path: str
    total: int
    compared: int
    skipped_faulted: int
    failures: tuple[RecordReconcile, ...]
    source_failures: tuple[str, ...]   #: emitted-source verification errors
    errors: tuple[str, ...]            #: records that failed to run at all

    def exit_code(self) -> int:
        return 1 if self.failures or self.source_failures or self.errors else 0

    def render(self) -> str:
        lines = [
            f"estimate reconcile vs {self.baseline_path}: {self.total} records, "
            f"{self.compared} compared, {self.skipped_faulted} faulted skipped, "
            f"{len(self.failures)} counter mismatch(es), "
            f"{len(self.source_failures)} source failure(s), "
            f"{len(self.errors)} error(s)"
        ]
        lines.extend("  " + f.render() for f in self.failures)
        lines.extend(f"  SOURCE: {s}" for s in self.source_failures)
        lines.extend(f"  ERROR: {e}" for e in self.errors)
        return "\n".join(lines)

    def to_json_obj(self) -> dict[str, Any]:
        return {
            "baseline": self.baseline_path,
            "total": self.total,
            "compared": self.compared,
            "skipped_faulted": self.skipped_faulted,
            "failures": [
                {
                    "kernel": f.kernel,
                    "device": f.device,
                    "mismatches": [
                        {
                            "field": m.field,
                            "predicted": m.predicted,
                            "measured": m.measured,
                        }
                        for m in f.mismatches
                    ],
                }
                for f in self.failures
            ],
            "source_failures": list(self.source_failures),
            "errors": list(self.errors),
        }


def _reconcile_record(record: Any, report: Any = None) -> RecordReconcile:
    """Compare one record's resimulated counters with the IR estimate.

    ``report`` lets a caller that already resimulated the record (the
    batched profile loop) hand in the launch report; it is bit-identical
    to the scalar resimulation either way, so the exact-field comparison
    below is unaffected by who produced it.
    """
    from repro.obs.regress import plan_for_record

    plan = plan_for_record(record)
    if report is None:
        from repro.gpusim.executor import simulate

        report = simulate(plan, record.device, record.grid)
    est = estimate_plan(plan, record.device, record.grid)

    mismatches: list[FieldMismatch] = []
    for name in EXACT_FIELDS:
        predicted = getattr(est, name)
        measured = report.counters[name]
        if predicted != measured:
            mismatches.append(FieldMismatch(name, predicted, measured))
    if est.limiter != report.counters.occupancy_limiter:
        mismatches.append(FieldMismatch(
            "limiter", est.limiter, report.counters.occupancy_limiter
        ))
    # The headline must agree too: the estimate's clean time derivation is
    # the executor's own (fault derating never reaches this path).
    if est.mpoints_per_s != report.mpoints_per_s:
        mismatches.append(FieldMismatch(
            "mpoints_per_s", est.mpoints_per_s, report.mpoints_per_s
        ))
    return RecordReconcile(
        kernel=record.kernel, device=record.device, mismatches=tuple(mismatches)
    )


def _batch_simulate(records: list[Any]) -> list[Any]:
    """Resimulate profile records through the batch engine, per device.

    Returns one ``SimReport`` or ``Exception`` per record, in input
    order.  A record whose plan cannot be rebuilt carries that exception
    in its slot so the caller reports it exactly as the scalar loop did.
    """
    from repro.gpusim.batch import BatchEngine, batch_reports
    from repro.obs.regress import plan_for_record

    slots: list[Any] = [None] * len(records)
    by_device: dict[str, list[tuple[int, Any, Any]]] = {}
    for idx, record in enumerate(records):
        try:
            plan = plan_for_record(record)
        except Exception as exc:  # noqa: BLE001 - becomes the slot's error
            slots[idx] = exc
            continue
        by_device.setdefault(record.device, []).append((idx, record, plan))
    for device, group in by_device.items():
        try:
            engine = BatchEngine(get_device(device))
        except Exception as exc:  # noqa: BLE001 - e.g. unknown device
            for idx, _record, _plan in group:
                slots[idx] = exc
            continue
        reports = batch_reports(
            [(plan, record.grid) for _idx, record, plan in group],
            engine.device,
            engine=engine,
        )
        for (idx, _record, _plan), report in zip(group, reports):
            slots[idx] = report
    return slots


def _verify_record_sources(records: Iterable[Any]) -> list[str]:
    """Run the emitted-source verifier over every distinct plan in a set.

    Generates all three backends unverified, then checks each against the
    shared IR — so the gate fails on an IR<->source divergence even if an
    emitter's own self-check were bypassed.  Imported lazily: codegen
    imports this package.
    """
    from repro.analysis.diagnostics import Severity
    from repro.analysis.srcverify import verify_emitted
    from repro.codegen import (
        generate_hip_kernel,
        generate_kernel,
        generate_opencl_kernel,
    )
    from repro.obs.regress import plan_for_record

    failures: list[str] = []
    seen: set[str] = set()
    for record in records:
        try:
            plan = plan_for_record(record)
            ir = lower_plan(plan, record.grid)
        except ReproError as exc:
            failures.append(f"{record.kernel}: {exc}")
            continue
        if ir.kernel in seen:
            continue
        seen.add(ir.kernel)
        for emit in (generate_kernel, generate_opencl_kernel, generate_hip_kernel):
            try:
                src = emit(plan, verify=False)
            except ReproError as exc:
                failures.append(f"{record.kernel}: {exc}")
                continue
            for diag in verify_emitted(src, ir):
                if diag.severity == Severity.ERROR:
                    failures.append(
                        f"{src.name} [{src.backend}]: [{diag.rule}] {diag.message}"
                    )
    return failures


def reconcile_profile(
    path: str | Path, *, verify_sources: bool = True
) -> ReconcileReport:
    """Reconcile the estimator against every record of a trajectory file.

    Faulted records are skipped exactly as the regression sentinel skips
    them: their *measurements* embed an injected perturbation, while the
    estimate — a pure function of the plan — describes the clean launch.
    """
    from repro.obs.telemetry import load_profile

    records = load_profile(path)
    failures: list[RecordReconcile] = []
    errors: list[str] = []
    comparable = []
    skipped = 0
    for record in records:
        if record.faulted:
            skipped += 1
            continue
        comparable.append(record)
    # One batched resimulation pass (grouped per device, block classes
    # deduplicated) replaces the per-record scalar simulate; the reports
    # are bit-identical (the batch-identity gate), and any per-record
    # failure surfaces as the same error string the scalar loop produced.
    for record, report in zip(comparable, _batch_simulate(comparable)):
        try:
            if isinstance(report, Exception):
                raise report
            outcome = _reconcile_record(record, report=report)
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            errors.append(f"{record.kernel} on {record.device}: {exc}")
            continue
        if not outcome.ok:
            failures.append(outcome)
    source_failures = (
        tuple(_verify_record_sources(comparable)) if verify_sources else ()
    )
    return ReconcileReport(
        baseline_path=str(path),
        total=len(records),
        compared=len(comparable),
        skipped_faulted=skipped,
        failures=tuple(failures),
        source_failures=source_failures,
        errors=tuple(errors),
    )
