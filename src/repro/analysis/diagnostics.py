"""Structured diagnostics — the output format of the static analyzer.

A :class:`Diagnostic` is one finding of one rule over one object (a kernel
plan, a tuning configuration, a stencil expression, a slab decomposition):
rule id, severity, a human location string, the message, and an optional
fix hint.  An :class:`AnalysisReport` aggregates the findings of one
analyzer run and owns presentation (text and JSON) plus the exit-code
policy the CLI exposes.

Nothing in this module executes a kernel or prices a cycle; diagnostics
are produced purely from the plan's declared geometry and resources.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis rule.

    Attributes
    ----------
    rule:
        Stable rule id from the catalog (e.g. ``"COV-TILE-OVERLAP"``).
    severity:
        :class:`Severity` of the finding.
    location:
        Human-readable anchor: a plan name, ``"block (32, 4, 1, 4)"``, a
        DSL source position, a slab index.
    message:
        What is wrong, with the concrete numbers that prove it.
    hint:
        How to fix or suppress it (may be empty).
    """

    rule: str
    severity: Severity
    location: str
    message: str
    hint: str = ""

    def render(self) -> str:
        """``error[COV-TILE-GAP] at <loc>: <message>`` (+ indented hint)."""
        text = f"{self.severity.label}[{self.rule}] {self.location}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.label,
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class AnalysisReport:
    """All diagnostics of one analyzer run, with presentation helpers."""

    subject: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Rule ids explicitly suppressed for this run (recorded for the JSON
    #: output so a clean report is distinguishable from a silenced one).
    suppressed: tuple[str, ...] = ()

    def add(self, diag: Diagnostic) -> None:
        if diag.rule not in self.suppressed:
            self.diagnostics.append(diag)

    def extend(self, diags: list[Diagnostic]) -> None:
        for diag in diags:
            self.add(diag)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when no error-level diagnostics were found."""
        return not self.errors

    def rules_fired(self) -> list[str]:
        return sorted({d.rule for d in self.diagnostics})

    def exit_code(self) -> int:
        """Stable CLI exit code: 0 clean (warnings allowed), 1 errors."""
        return 0 if self.ok else 1

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Text report: one block per diagnostic plus a one-line summary."""
        lines = [f"lint {self.subject}:"]
        order = (Severity.ERROR, Severity.WARNING, Severity.INFO)
        for severity in order:
            lines.extend(d.render() for d in self.by_severity(severity))
        n_err, n_warn = len(self.errors), len(self.warnings)
        n_info = len(self.by_severity(Severity.INFO))
        lines.append(
            f"{n_err} error(s), {n_warn} warning(s), {n_info} note(s)"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "subject": self.subject,
                "ok": self.ok,
                "suppressed": list(self.suppressed),
                "diagnostics": [d.as_dict() for d in self.diagnostics],
            },
            indent=2,
        )

    def merge(self, other: "AnalysisReport") -> None:
        """Fold another report's diagnostics into this one."""
        self.extend(other.diagnostics)
