"""Grid initializers for examples, tests and benchmarks.

All generators return [z, y, x]-indexed arrays (the library convention)
with a requested dtype and are deterministic given their arguments, so
correctness comparisons across kernels never chase moving inputs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GridShapeError

Shape = tuple[int, int, int]


def _check(shape: Shape) -> None:
    if len(shape) != 3 or min(shape) <= 0:
        raise GridShapeError(f"grid shape must be 3 positive dims, got {shape}")


def random_grid(shape: Shape, dtype: str = "float32", seed: int = 0) -> np.ndarray:
    """Uniform [0, 1) noise — the standard correctness-test input."""
    _check(shape)
    rng = np.random.default_rng(seed)
    return rng.random(shape).astype(dtype)


def hot_cube(
    shape: Shape,
    dtype: str = "float32",
    temperature: float = 100.0,
    half_width: int | None = None,
) -> np.ndarray:
    """Cold block with a hot cube in the centre (heat-diffusion demos)."""
    _check(shape)
    grid = np.zeros(shape, dtype=dtype)
    lz, ly, lx = shape
    hw = half_width if half_width is not None else max(1, min(shape) // 8)
    grid[
        lz // 2 - hw : lz // 2 + hw,
        ly // 2 - hw : ly // 2 + hw,
        lx // 2 - hw : lx // 2 + hw,
    ] = temperature
    return grid


def plane_wave(
    shape: Shape, dtype: str = "float32", wavelength: float = 16.0, axis: int = 2
) -> np.ndarray:
    """Sinusoid along one axis — smooth input for convergence studies."""
    _check(shape)
    if axis not in (0, 1, 2):
        raise GridShapeError(f"axis must be 0..2, got {axis}")
    if wavelength <= 0:
        raise GridShapeError("wavelength must be positive")
    coord = np.arange(shape[axis], dtype=np.float64)
    wave = np.sin(2.0 * np.pi * coord / wavelength)
    view = [1, 1, 1]
    view[axis] = shape[axis]
    return np.broadcast_to(wave.reshape(view), shape).astype(dtype)


def checkerboard(shape: Shape, dtype: str = "float32", cell: int = 4) -> np.ndarray:
    """Alternating cells — the roughest smoothing-test input."""
    _check(shape)
    if cell <= 0:
        raise GridShapeError("cell must be positive")
    z, y, x = np.indices(shape)
    board = ((z // cell) + (y // cell) + (x // cell)) % 2
    return board.astype(dtype)


def coordinate_polynomial(
    shape: Shape,
    dtype: str = "float64",
    coeffs: tuple[float, float, float] = (1.0, 2.0, 3.0),
) -> np.ndarray:
    """``ax^2 + by^2 + cz^2`` — known discrete Laplacian ``2(a+b+c)``.

    Used by solver examples/tests as a manufactured solution.
    """
    _check(shape)
    z, y, x = np.meshgrid(*(np.arange(n, dtype=np.float64) for n in shape), indexing="ij")
    a, b, c = coeffs
    return (a * x * x + b * y * y + c * z * z).astype(dtype)
