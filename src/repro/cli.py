"""Command-line interface.

Usage::

    repro list-devices
    repro list-kernels
    repro simulate --kernel inplane_fullslice --order 4 --device gtx580 \
                   --block 32,4,1,4 [--dtype dp] [--grid 512,512,256] \
                   [--trace trace.json]
    repro tune --kernel inplane_fullslice --order 2 --device gtx680 \
               [--method model --beta 0.05] [--no-register-blocking] \
               [--trace trace.json]
    repro tune --method auto --faults 'seed=7,launch=0.1,hang=0.02' \
               --journal tune.journal [--resume] [--retries 3] \
               [--watchdog 1e9] [--budget 30] [--seed 0] \
               [--events tune.events] [--metrics-out tune.prom]
    repro top --journal tune.journal [--events tune.events] \
              [--json] [--once] [--interval 1.0]
    repro profile --kernel inplane_fullslice --order 4 --device gtx580 \
                  [--trace-out trace.json] [--json] [--top 8]
    repro profile --compare --order 4 --block 32,4,1,2
    repro bench diff --baseline BENCH_profile.json [--tolerance 0.0] [--json]
    repro experiment fig7 [--out fig7.csv]
    repro experiment all --out-dir results/
    repro codegen --kernel inplane_fullslice --order 4 --block 32,4,1,4 \
                  [--out kernel.cu] [--driver]
    repro scaling --gpus 1,2,4,8 [--weak] [--order 2] [--device gtx580]
    repro cluster run --gpus 4 --steps 8 \
                      [--faults 'seed=7,corrupt=0.2,dropout=0.05'] \
                      [--checkpoint grid.ckpt --every 2] [--resume] \
                      [--events cluster.events] [--json]
    repro lint --kernel inplane_fullslice --order 4 --block 32,4,1,4 \
               [--device gtx580] [--grid 512,512,256] [--json] \
               [--suppress RULE] [--tile-stride SX,SY]
    repro lint --stencil-file heat.stencil

``repro experiment`` regenerates any table/figure of the paper by name
(table1, table2, table3, table4, fig7, fig8, fig9, fig10, fig11, fig12,
crossover); ``repro codegen`` emits the CUDA C for a kernel plan;
``repro scaling`` runs the multi-GPU slab-decomposition cost model;
``repro lint`` runs the static analyzer (``repro.analysis``) over a plan
or a DSL program without executing anything, exiting 1 when any
error-level diagnostic fires; ``repro profile`` runs the simulated-GPU
profiler (``repro.obs``) and can export Perfetto-viewable Chrome traces
(exit 1 when the timeline fails reconciliation); ``repro bench diff``
resimulates a recorded ``BENCH_profile.json`` trajectory against the
current tree and exits nonzero on regressions, naming the counter that
moved.

``repro tune`` with ``--faults``, ``--journal``/``--resume``, or a
``stochastic``/``auto`` method runs a resilient session
(:mod:`repro.tuning.robust`) with retries, quarantine, and a crash-safe
journal.  Its exit codes are stable: 0 success, 1 tuning failed (every
tier exhausted or all configs quarantined), 2 bad ``--faults`` spec or
unusable journal (missing, corrupt, or from a different session).
``--events`` streams the session's structured events
(:mod:`repro.obs.events`) to a JSONL file — byte-identical at any
``--jobs`` — and ``repro top`` follows that stream plus the journal
live (or ``--json`` for scripts; exit 1 when the watched session
crashed).  ``--metrics-out`` on ``tune`` and ``profile`` exports the
run's metrics registry in Prometheus text exposition (``.prom`` /
``.txt``) or OTLP-style JSON (:mod:`repro.obs.export`).

``repro cluster run`` steps a fault-tolerant multi-GPU campaign
(:mod:`repro.cluster.resilient`): deterministic link corruption is
retried with backoff, dead GPUs are quarantined with the grid
re-decomposed over survivors, and ``--checkpoint``/``--resume`` make
the campaign crash-safe (a killed-and-resumed run is bit-identical to
an uninterrupted one; the printed grid digest is the witness).  Exit
codes are stable: 0 success, 1 unrecoverable fleet, 2 bad ``--faults``
spec or unusable checkpoint.

Output conventions: primary and machine-readable results go to stdout
(``--json`` modes stay pipe-clean); diagnostics ("wrote ...", progress)
go through :mod:`logging` to stderr, at a verbosity set by ``-v`` / ``-q``.
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path

from repro import __version__
from repro.gpusim.device import get_device, list_devices
from repro.gpusim.executor import simulate
from repro.kernels.config import BlockConfig
from repro.kernels.factory import KERNEL_FAMILIES, make_kernel
from repro.stencils.spec import symmetric

log = logging.getLogger("repro")


def _setup_logging(verbosity: int) -> None:
    """stderr diagnostics at WARNING/INFO/DEBUG per -q/-v count."""
    level = (
        logging.ERROR if verbosity < 0
        else logging.INFO if verbosity == 0
        else logging.DEBUG
    )
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    root = logging.getLogger("repro")
    root.handlers[:] = [handler]
    root.setLevel(level)


def _parse_ints(text: str, n: int | None = None) -> tuple[int, ...]:
    parts = tuple(int(p) for p in text.split(","))
    if n is not None and len(parts) != n:
        raise argparse.ArgumentTypeError(f"expected {n} comma-separated ints")
    return parts


def _cmd_list_devices(_args: argparse.Namespace) -> int:
    for name in list_devices():
        dev = get_device(name)
        print(
            f"{name:8s} {dev.display_name:18s} {dev.sm_count:3d} SMs  "
            f"{dev.peak_sp_gflops:7.0f} SP GFlop/s  "
            f"{dev.measured_bandwidth_gbs:6.1f} GB/s measured"
        )
    return 0


def _cmd_list_kernels(_args: argparse.Namespace) -> int:
    for name in sorted(KERNEL_FAMILIES):
        print(name)
    return 0


def _maybe_tracing(args: argparse.Namespace):
    """An active tracer context when ``--trace`` (or ``--metrics-out``,
    which needs a live metrics registry) was given, inert otherwise."""
    from contextlib import nullcontext

    from repro.obs import tracing

    if getattr(args, "trace", None) or getattr(args, "metrics_out", None):
        return tracing()
    return nullcontext(None)


def _maybe_events(args: argparse.Namespace):
    """An installed JSONL event sink when ``--events`` was given.

    Only used on the *plain* tune paths; the resilient session wires its
    own sink (tee'd with the flight recorder) from ``events_path``.
    """
    from contextlib import contextmanager, nullcontext

    path = getattr(args, "events", None)
    if not path:
        return nullcontext(None)

    from repro.obs.events import JsonlEventSink, event_stream

    @contextmanager
    def _stream():
        sink = JsonlEventSink(path)
        try:
            with event_stream(sink):
                yield sink
        finally:
            sink.close()

    return _stream()


def _maybe_archive(args: argparse.Namespace, session: str | None = None):
    """An installed trial archive when ``--archive`` was given.

    Only used on the *plain* tune paths; the resilient session owns its
    archive lifecycle (``archive_path``) so resume/replay capture stays
    inside its journal discipline.
    """
    from contextlib import contextmanager, nullcontext

    path = getattr(args, "archive", None)
    if not path:
        return nullcontext(None)

    from repro.obs.archive import TrialArchive, archive_stream

    @contextmanager
    def _stream():
        with TrialArchive(path, session=session) as arc, archive_stream(arc):
            yield arc

    return _stream()


def _finish_trace(tracer, path: str | None) -> None:
    """Write the Chrome trace (if requested) and log where it went."""
    if tracer is None or not path:
        return
    from repro.obs import write_chrome_trace

    write_chrome_trace(tracer, path)
    log.info("wrote trace %s (open in https://ui.perfetto.dev)", path)


def _finish_metrics(tracer, path: str | None) -> None:
    """Export the tracer's metrics registry (if requested) and log it."""
    if tracer is None or not path:
        return
    from repro.obs.export import write_metrics

    out = Path(path)
    fmt = "prometheus" if out.suffix in (".prom", ".txt") else "otlp-json"
    write_metrics(tracer.metrics, out)
    log.info("wrote metrics %s (%s)", out, fmt)


def _cmd_simulate(args: argparse.Namespace) -> int:
    block = BlockConfig(*_parse_ints(args.block))
    plan = make_kernel(args.kernel, symmetric(args.order), block, args.dtype)
    with _maybe_tracing(args) as tracer:
        report = simulate(plan, args.device, _parse_ints(args.grid, 3))
    print(report.summary())
    for key, value in sorted(report.breakdown.items()):
        print(f"  {key}: {value:.1f}")
    _finish_trace(tracer, args.trace)
    return 0


# Stable ``repro tune`` exit codes (documented in docs/ROBUSTNESS.md and
# pinned by tests/test_tuning_robust.py): 0 success, 1 tuning failed
# (every tier exhausted / all trials quarantined), 2 journal unusable
# (missing, unreadable, or bound to a different session) or bad spec.
EXIT_TUNE_OK = 0
EXIT_TUNE_FAILED = 1
EXIT_TUNE_JOURNAL = 2


def _print_tune_entries(result) -> None:
    for entry in result.entries[:10]:
        line = f"  {entry.config.label():>18} {entry.mpoints_per_s:10.1f} MPt/s"
        if entry.predicted is not None:
            line += f"  (model: {entry.predicted:10.1f})"
        print(line)


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro import autotune
    from repro.harness.runner import tune_family

    grid = _parse_ints(args.grid, 3)
    # The resilient session engages when any robustness feature is asked
    # for; the plain paths below stay byte-identical otherwise.
    robust = bool(
        args.faults or args.journal or args.resume
        or args.retries is not None or args.watchdog is not None
        or args.method in ("stochastic", "auto")
    )
    plain_session = f"{args.kernel}:o{args.order}:{args.dtype}"
    if not robust:
        with _maybe_tracing(args) as tracer, _maybe_events(args), \
                _maybe_archive(args, session=plain_session):
            if args.jobs:
                # Parallel batch engine: the tuners detect the
                # batch-capable evaluator and hand it the whole config
                # list; outcomes come back in input order, so the winner
                # matches --jobs 1 (and the serial path) bit for bit.
                from repro.tuning.exhaustive import exhaustive_tune
                from repro.tuning.modelbased import model_based_tune
                from repro.tuning.parallel import (
                    FamilyKernelBuilder,
                    ParallelEvaluator,
                )
                from repro.tuning.space import ParameterSpace

                device = get_device(args.device)
                build = FamilyKernelBuilder(args.kernel, args.order, args.dtype)
                space = (
                    ParameterSpace(rx_values=(1,), ry_values=(1,))
                    if args.no_register_blocking else None
                )
                with ParallelEvaluator(device, jobs=args.jobs) as evaluator:
                    if args.method == "model":
                        result = model_based_tune(
                            build, device, grid, beta=args.beta, space=space,
                            evaluator=evaluator,
                        )
                    else:
                        result = exhaustive_tune(
                            build, device, grid, space, evaluator=evaluator
                        )
                log.info("tuned with %d worker(s)", evaluator.jobs)
            else:
                # Plain in-process runs go through the vectorized batch
                # simulator core: one NumPy pass over the deduplicated
                # block classes instead of one scalar pipeline walk per
                # config.  Bit-identical to the serial loop (the
                # batch-identity gate in tools/check.py), so the winner
                # and every tie-break are unchanged.
                from repro.tuning.vectorized import VectorTrialEvaluator

                evaluator = VectorTrialEvaluator(args.device)
                if args.method == "model":
                    result = autotune(
                        args.kernel, args.order, args.device,
                        grid_shape=grid, dtype=args.dtype,
                        method="model", beta=args.beta,
                        evaluator=evaluator,
                    )
                else:
                    result = tune_family(
                        args.kernel, args.order, args.device, dtype=args.dtype,
                        grid=grid,
                        register_blocking=not args.no_register_blocking,
                        evaluator=evaluator,
                    )
        if args.json:
            import json

            print(json.dumps(result.to_json_obj(), indent=2, sort_keys=True))
        else:
            print(result.summary())
            _print_tune_entries(result)
        _finish_trace(tracer, args.trace)
        _finish_metrics(tracer, args.metrics_out)
        return EXIT_TUNE_OK

    from repro.errors import ConfigurationError, JournalError, TuningError
    from repro.gpusim.faults import FaultPlan
    from repro.tuning.robust import RetryPolicy, RobustTuningSession
    from repro.tuning.space import ParameterSpace

    try:
        faults = FaultPlan.parse(args.faults) if args.faults else None
    except ConfigurationError as exc:
        log.error("bad --faults spec: %s", exc)
        return EXIT_TUNE_JOURNAL
    device = get_device(args.device)
    spec = symmetric(args.order)

    def build(cfg: BlockConfig):
        return make_kernel(args.kernel, spec, cfg, args.dtype)

    space = None
    if args.no_register_blocking:
        space = ParameterSpace(rx_values=(1,), ry_values=(1,))
    session_key = (
        f"{args.kernel}:o{args.order}:{args.dtype}:"
        + RobustTuningSession.default_session_key(device, grid, faults)
    )
    retries = 3 if args.retries is None else args.retries
    session = None
    try:
        session = RobustTuningSession(
            device, grid,
            faults=faults,
            policy=RetryPolicy(max_retries=retries),
            journal_path=args.journal,
            resume=args.resume,
            session_key=session_key,
            watchdog_cycles=args.watchdog,
            jobs=args.jobs,
            events_path=args.events,
            archive_path=args.archive,
        )
        with _maybe_tracing(args) as tracer:
            sres = session.run(
                build, method=args.method, space=space, beta=args.beta,
                budget=args.budget, seed=args.seed,
            )
    except JournalError as exc:
        log.error("journal error: %s", exc)
        return EXIT_TUNE_JOURNAL
    except TuningError as exc:
        log.error("tuning failed: %s", exc)
        return EXIT_TUNE_FAILED
    finally:
        if session is not None:
            session.close()
    stats = sres.stats
    if args.json:
        import json

        obj = sres.result.to_json_obj()
        obj["session"] = session_key
        obj["stats"] = dict(sorted(stats.items()))
        print(json.dumps(obj, indent=2, sort_keys=True))
    else:
        print(sres.summary())
        _print_tune_entries(sres.result)
    log.info(
        "trials: %d live, %d replayed, %d retries, %d quarantined",
        stats.get("live_trials", 0), stats.get("replayed", 0),
        stats.get("retries", 0), stats.get("quarantined_configs", 0),
    )
    _finish_trace(tracer, args.trace)
    _finish_metrics(tracer, args.metrics_out)
    return EXIT_TUNE_OK


def _cmd_explain(args: argparse.Namespace) -> int:
    import json

    from repro.obs.archive import ArchiveError, read_archive
    from repro.obs.explain import (
        calibration_registry,
        dump_landscape,
        explain,
    )

    try:
        header, records = read_archive(args.archive, strict=True)
    except ArchiveError as exc:
        log.error("unusable archive: %s", exc)
        return EXIT_TUNE_JOURNAL
    report = explain(header, records, top=args.top)
    if args.json:
        print(json.dumps(report.to_json_obj(), indent=2, sort_keys=True))
    else:
        print(report.render())
    if args.landscape_out:
        names = dump_landscape(records, args.landscape_out)
        log.info(
            "wrote %d landscape file(s) to %s", len(names), args.landscape_out
        )
    if args.metrics_out:
        from repro.obs.export import write_metrics

        write_metrics(
            calibration_registry(report.calibration), Path(args.metrics_out)
        )
        log.info("wrote calibration metrics %s", args.metrics_out)
    return EXIT_TUNE_OK


_EXPERIMENTS = {
    "table1": "table1_specs",
    "table2": "table2_opcounts",
    "table3": "table3_devices",
    "table4": "table4_autotune",
    "fig7": "fig7_variants",
    "fig8": "fig8_surface",
    "fig9": "fig9_load_efficiency",
    "fig10": "fig10_breakdown",
    "fig11": "fig11_applications",
    "fig12": "fig12_modelbased",
    "crossover": "high_order_crossover",
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    import repro.harness as harness
    from repro.harness.export import write_result

    names = list(_EXPERIMENTS) if args.name == "all" else [args.name]
    for name in names:
        func = getattr(harness, _EXPERIMENTS[name])
        result = func()
        if args.out and args.name != "all":
            path = write_result(result, args.out)
            log.info("wrote %s", path)
        elif args.out_dir:
            out = Path(args.out_dir)
            out.mkdir(parents=True, exist_ok=True)
            path = write_result(result, out / f"{name}.txt")
            log.info("wrote %s", path)
        else:
            print(result.render())
            print()
    return 0


def _cmd_codegen(args: argparse.Namespace) -> int:
    from repro.codegen import generate_host_driver, generate_kernel
    from repro.codegen.manifest import BACKENDS, generate_backend

    block = BlockConfig(*_parse_ints(args.block))
    plan = make_kernel(args.kernel, symmetric(args.order), block, args.dtype)
    backends = BACKENDS if args.backend == "all" else (args.backend,)
    for backend in backends:
        if backend == "cuda":
            src = generate_kernel(plan, grid_shape=_parse_ints(args.grid, 3))
        else:
            src = generate_backend(plan, backend)
        text = src.text
        if args.driver and backend == "cuda":
            text += "\n" + generate_host_driver(plan, _parse_ints(args.grid, 3))
        if args.out:
            out = args.out if len(backends) == 1 else f"{args.out}.{backend}"
            Path(out).write_text(text)
            log.info("wrote %s (%d kernel lines)", out, src.line_count())
        else:
            print(text)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis of a kernel plan or DSL program (no execution)."""
    from repro.analysis import analyze_plan, analyze_source
    from repro.analysis.diagnostics import AnalysisReport
    from repro.analysis.dsl import diagnostic_from_error
    from repro.analysis.rules import CFG_POSITIVE
    from repro.errors import ReproError

    suppress = tuple(args.suppress or ())

    if args.emitted:
        from repro.analysis import analyze_emitted
        from repro.codegen.manifest import BACKENDS, generate_backend

        block = BlockConfig(*_parse_ints(args.block))
        plan = make_kernel(args.kernel, symmetric(args.order), block, args.dtype)
        report = AnalysisReport(
            subject=f"emitted sources of {plan.name}", suppressed=suppress
        )
        for backend in BACKENDS:
            # Generate unverified: the point of lint is to *report* the
            # SRC-* findings, not to have the emitter refuse first.
            src = generate_backend(plan, backend, verify=False)
            report.merge(analyze_emitted(src, suppress=suppress))
        print(report.to_json() if args.json else report.render())
        return report.exit_code()

    if args.stencil or args.stencil_file:
        source = (
            args.stencil
            if args.stencil
            else Path(args.stencil_file).read_text()
        )
        name = args.stencil_file or "<inline>"
        report = analyze_source(source, name, suppress=suppress)
    else:
        subject = f"{args.kernel} order-{args.order} ({args.block})"
        stride_x = stride_y = None
        if args.tile_stride:
            stride_x, stride_y = _parse_ints(args.tile_stride, 2)
        try:
            block = BlockConfig(*_parse_ints(args.block))
            plan = make_kernel(
                args.kernel, symmetric(args.order), block, args.dtype
            )
        except ReproError as exc:
            # Construction-time rejections carry the same rule ids the
            # analyzer would report; surface them as a one-finding report.
            report = AnalysisReport(subject=subject, suppressed=suppress)
            report.add(diagnostic_from_error(exc, subject, CFG_POSITIVE))
        else:
            device = get_device(args.device) if args.device else None
            grid = _parse_ints(args.grid, 3) if args.grid else None
            report = analyze_plan(
                plan,
                device=device,
                grid_shape=grid,
                stride_x=stride_x,
                stride_y=stride_y,
                suppress=suppress,
            )

    print(report.to_json() if args.json else report.render())
    return report.exit_code()


def _cmd_profile(args: argparse.Namespace) -> int:
    """The simulated-GPU profiler (``repro.obs``).

    Default mode traces one kernel and prints the flame/summary report
    plus the ranked bottleneck attribution; ``--compare`` prints the
    nvprof-style counter table (with each variant's primary limiter) over
    all loading variants instead.  ``--trace-out`` exports a
    Perfetto-viewable Chrome trace; ``--json`` replaces stdout with
    machine-readable telemetry.  Exits 1 when the reconstructed timeline
    fails wave-sum reconciliation (in every output mode).
    """
    from repro.metrics.roofline import roofline
    from repro.obs import (
        TelemetryCollector,
        Tracer,
        summarize,
        tracing,
        write_chrome_trace,
    )
    from repro.obs.attribution import attribute, limiter_name
    from repro.obs.summary import reconcile_failures
    from repro.utils.tables import format_table

    block = BlockConfig(*_parse_ints(args.block))
    grid = _parse_ints(args.grid, 3)
    dev = get_device(args.device)
    families = (
        ("nvstencil", "inplane_classical", "inplane_vertical",
         "inplane_horizontal", "inplane_fullslice")
        if args.compare else (args.kernel,)
    )

    collector = TelemetryCollector()
    rows = []
    plan = rep = None
    with tracing(Tracer(plane_limit=max(1, args.top))) as tracer:
        for family in families:
            plan = make_kernel(family, symmetric(args.order), block, args.dtype)
            wl = plan.block_workload(dev, grid)
            rep = simulate(plan, dev, grid)
            collector.add_report(rep, order=args.order, source="cli.profile")
            mem = wl.memory
            rows.append((
                family,
                round(rep.mpoints_per_s, 1),
                f"{rep.load_efficiency:.1%}",
                round(mem.load_instructions, 1),
                round(mem.load_transactions, 1),
                round(mem.camped_bytes),
                mem.load_phases,
                f"{rep.occupancy.occupancy:.0%}",
                wl.regs_per_thread,
                limiter_name(rep.counters),
            ))

    if args.json:
        print(collector.to_json(), end="")
    elif args.compare:
        print(format_table(
            ("variant", "MPt/s", "ld eff", "ld instr", "ld tx", "camped B",
             "phases", "occ", "regs", "limiter"),
            rows,
            title=(f"profile: order {args.order} {args.dtype.upper()} "
                   f"{block.label()} on {args.device}"),
        ))
    else:
        print(summarize(tracer, top=args.top))
        print()
        print(attribute(rep, roofline(plan, dev, grid, rep)).render())
    if args.trace_out:
        write_chrome_trace(tracer, args.trace_out)
        log.info(
            "wrote trace %s (open in https://ui.perfetto.dev)", args.trace_out
        )
    _finish_metrics(tracer, args.metrics_out)
    failures = reconcile_failures(tracer)
    for failure in failures:
        log.error("reconciliation failure: %s", failure)
    return 1 if failures else 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    """Codegen-time performance estimation from the access-plan IR.

    Default mode lowers one plan and prints the prediction the emitters
    attach as the source header; ``--reconcile`` instead resimulates a
    recorded trajectory and cross-checks the estimator against the
    measured counters (and every distinct plan's emitted sources against
    the IR), exiting 1 on any mismatch — the ``tools/check.py`` gate.
    """
    import json

    from repro.analysis.estimate import estimate_plan, reconcile_profile

    if args.reconcile:
        report = reconcile_profile(
            args.baseline, verify_sources=not args.no_verify_sources
        )
        if args.json:
            print(json.dumps(report.to_json_obj(), indent=1))
        else:
            print(report.render())
        return report.exit_code()

    block = BlockConfig(*_parse_ints(args.block))
    plan = make_kernel(args.kernel, symmetric(args.order), block, args.dtype)
    est = estimate_plan(plan, args.device, _parse_ints(args.grid, 3))
    if args.json:
        print(json.dumps(est.to_json_obj(), indent=1))
    else:
        print(est.render())
    return 0


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    """Perf-regression sentinel over a recorded trajectory document."""
    import json

    from repro.obs.regress import diff_baseline

    report = diff_baseline(
        args.baseline, tolerance=args.tolerance, jobs=args.jobs or 1
    )
    if args.json:
        print(json.dumps(report.to_json_obj(), indent=1))
    else:
        print(report.render(verbose=args.verbose > 0))
    return report.exit_code()


def _cmd_top(args: argparse.Namespace) -> int:
    """Live view of a tuning session from its on-disk artifacts.

    A pure reader: it tails the crash-safe journal and/or the structured
    event stream (both torn-line tolerant, so tailing a *running*
    session is safe) and renders a refreshing panel.  ``--json`` prints
    one machine-readable snapshot instead — the trial/retry/quarantine
    counts are journal-authoritative, i.e. exactly what a ``--resume``
    of that session would replay.  Exits 1 when the watched session
    recorded a crash, 0 otherwise.
    """
    import json

    from repro.obs.live import (
        follow_session,
        render_snapshot,
        snapshot_session,
    )

    if not args.journal and not args.events:
        log.error("repro top needs --journal and/or --events")
        return 2
    if args.json:
        snap = snapshot_session(args.journal, args.events)
        print(json.dumps(snap.to_obj(), indent=1, sort_keys=True))
        return 1 if snap.crashed else 0
    if args.once or not sys.stdout.isatty():
        snap = snapshot_session(args.journal, args.events)
        print(render_snapshot(snap))
        return 1 if snap.crashed else 0

    def redraw(panel: str) -> None:
        # Home + clear-to-end keeps the panel in place without the
        # full-screen flash a clear-screen-per-refresh would cause.
        sys.stdout.write("\x1b[H\x1b[J" + panel + "\n")
        sys.stdout.flush()

    last = None
    try:
        for last in follow_session(
            args.journal, args.events,
            interval_s=args.interval, refreshes=args.refreshes, emit=redraw,
        ):
            pass
    except KeyboardInterrupt:
        pass
    return 1 if last is not None and last.crashed else 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.cluster import MultiGpuStencil, PCIE_GEN2_X16

    sim = MultiGpuStencil(
        lambda: make_kernel(args.kernel, symmetric(args.order),
                            BlockConfig(*_parse_ints(args.block)), args.dtype),
        args.device,
        link=PCIE_GEN2_X16,
        overlap=args.overlap,
    )
    counts = _parse_ints(args.gpus)
    grid = _parse_ints(args.grid, 3)
    points = (
        sim.weak_scaling(grid, counts) if args.weak else sim.strong_scaling(grid, counts)
    )
    mode = "weak" if args.weak else "strong"
    print(f"{mode} scaling of order-{args.order} {args.kernel} on {args.device}:")
    for p in points:
        print(
            f"  {p.gpus:3d} GPUs: {p.mpoints_per_s:10.0f} MPt/s  "
            f"speedup {p.speedup:6.2f}  efficiency {p.efficiency:6.1%}"
        )
    return 0


# Stable ``repro cluster`` exit codes (documented in docs/CLUSTER.md and
# pinned by tests/test_cluster_resilient.py): 0 success, 1 unrecoverable
# fleet (every retry ladder exhausted or too few GPUs survive), 2 bad
# request (malformed --faults spec, unusable/corrupt checkpoint, bad grid).
EXIT_CLUSTER_OK = 0
EXIT_CLUSTER_FLEET = 1
EXIT_CLUSTER_SPEC = 2


def _cmd_cluster_run(args: argparse.Namespace) -> int:
    import json

    import numpy as np

    from repro.cluster import (
        ClusterPolicy,
        MultiGpuStencil,
        ResilientClusterStencil,
    )
    from repro.errors import (
        CheckpointError,
        ClusterError,
        ConfigurationError,
        GridShapeError,
    )
    from repro.gpusim.faults import ClusterFaultPlan

    try:
        faults = (
            ClusterFaultPlan.parse(args.faults) if args.faults else None
        )
        policy = ClusterPolicy(
            max_exchange_retries=args.max_retries,
            min_gpus=args.min_gpus,
            seed=faults.seed if faults is not None else 0,
        )
        lx, ly, lz = _parse_ints(args.grid, 3)
    except (ConfigurationError, ValueError, argparse.ArgumentTypeError) as exc:
        log.error("bad cluster spec: %s", exc)
        return EXIT_CLUSTER_SPEC

    engine = ResilientClusterStencil(
        MultiGpuStencil(
            lambda: make_kernel(
                args.kernel, symmetric(args.order),
                BlockConfig(*_parse_ints(args.block)), args.dtype,
            ),
            args.device,
            overlap=args.overlap,
        ),
        policy=policy,
    )
    # Deterministic initial condition: the grid is a pure function of
    # --grid-seed and the shape, so two invocations (e.g. a full run and
    # a kill/resume pair) start from bit-identical state.
    grid = np.random.default_rng(args.grid_seed).random((lz, ly, lx))

    with _maybe_tracing(args) as tracer, _maybe_events(args):
        try:
            result = engine.run_campaign(
                grid,
                args.gpus,
                args.steps,
                faults=faults,
                checkpoint_path=args.checkpoint,
                checkpoint_every=args.every,
                resume=args.resume,
            )
        except ClusterError as exc:
            log.error("fleet unrecoverable: %s", exc)
            return EXIT_CLUSTER_FLEET
        except (CheckpointError, ConfigurationError, GridShapeError) as exc:
            log.error("cannot run campaign: %s", exc)
            return EXIT_CLUSTER_SPEC
    _finish_trace(tracer, args.trace)
    _finish_metrics(tracer, args.metrics_out)

    if args.json:
        print(json.dumps({
            "digest": result.digest(),
            "steps": result.steps,
            "resumed_from": result.resumed_from,
            "alive": list(result.alive),
            "quarantined": list(result.quarantined),
            "exchange_retries": result.exchange_retries,
            "backoff_s": result.backoff_s,
            "checkpoints_written": result.checkpoints_written,
            "exchange_time_s": result.exchange_time_s,
        }, sort_keys=True))
    else:
        print(f"cluster: {result.summary()}")
        for p in result.points:
            print(
                f"  fleet {p.gpus:3d}: {p.mpoints_per_s:10.0f} MPt/s  "
                f"speedup {p.speedup:6.2f}  efficiency {p.efficiency:6.1%}"
            )
        print(f"  grid sha256 {result.digest()}")
    return EXIT_CLUSTER_OK


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="In-plane stencil method reproduction (Tang et al., 2013)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="more stderr diagnostics (-v: info is default; -vv: debug)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="errors only on stderr (keeps --json pipelines silent)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-devices", help="list simulated GPUs").set_defaults(
        func=_cmd_list_devices
    )
    sub.add_parser("list-kernels", help="list kernel families").set_defaults(
        func=_cmd_list_kernels
    )

    sim = sub.add_parser("simulate", help="simulate one kernel configuration")
    sim.add_argument("--kernel", default="inplane_fullslice")
    sim.add_argument("--order", type=int, default=2)
    sim.add_argument("--device", default="gtx580")
    sim.add_argument("--block", default="32,4,1,4", help="TX,TY[,RX,RY]")
    sim.add_argument("--dtype", default="sp", choices=("sp", "dp"))
    sim.add_argument("--grid", default="512,512,256")
    sim.add_argument("--trace", metavar="PATH",
                     help="write a Chrome trace of the launch here")
    sim.set_defaults(func=_cmd_simulate)

    tune = sub.add_parser("tune", help="auto-tune a kernel family")
    tune.add_argument("--kernel", default="inplane_fullslice")
    tune.add_argument("--order", type=int, default=2)
    tune.add_argument("--device", default="gtx580")
    tune.add_argument("--dtype", default="sp", choices=("sp", "dp"))
    tune.add_argument("--grid", default="512,512,256")
    tune.add_argument(
        "--method", default="exhaustive",
        choices=("exhaustive", "model", "stochastic", "auto"),
        help="tuner tier; 'auto' degrades model -> stochastic -> exhaustive",
    )
    tune.add_argument("--beta", type=float, default=0.05)
    tune.add_argument("--budget", type=int, default=30,
                      help="trial budget for the stochastic tier")
    tune.add_argument("--seed", type=int, default=0,
                      help="seed for stochastic search and retry jitter")
    tune.add_argument("--no-register-blocking", action="store_true")
    tune.add_argument("--faults", metavar="SPEC",
                      help="inject simulated faults, e.g. "
                           "'seed=7,launch=0.1,hang=0.02,throttle=0.05' "
                           "(see repro.gpusim.faults.FaultPlan.parse)")
    tune.add_argument("--journal", metavar="PATH",
                      help="crash-safe trial journal for this session")
    tune.add_argument("--resume", action="store_true",
                      help="replay journaled trials instead of re-running "
                           "them; exits 2 if the journal is missing or "
                           "belongs to a different session")
    tune.add_argument("--retries", type=int, metavar="N",
                      help="max retries per faulted trial (default 3)")
    tune.add_argument("--watchdog", type=float, metavar="CYCLES",
                      help="kill any launch exceeding this many simulated "
                           "cycles")
    tune.add_argument("--trace", metavar="PATH",
                      help="write a Chrome trace of the whole sweep here "
                           "(one tune.trial span per evaluated config)")
    tune.add_argument("--jobs", type=int, metavar="N",
                      help="measure trials on N worker processes (clamped "
                           "to the core count); the winner is bit-identical "
                           "at any N")
    tune.add_argument("--events", metavar="PATH",
                      help="stream structured events (repro.obs.events "
                           "JSONL) here; byte-identical at any --jobs, "
                           "tailed live by 'repro top --events'")
    tune.add_argument("--metrics-out", metavar="PATH",
                      help="export the run's metrics registry here "
                           "(.prom/.txt: Prometheus exposition; else "
                           "OTLP-style JSON)")
    tune.add_argument("--archive", metavar="PATH",
                      help="write the per-trial decision-provenance "
                           "archive (repro.obs.archive JSONL: rate, model "
                           "prediction, estimate, counters, disposition) "
                           "here; byte-identical at any --jobs, read by "
                           "'repro explain'")
    tune.add_argument("--json", action="store_true",
                      help="print the full ranked result as JSON (every "
                           "entry with its predicted score and "
                           "occupancy/load-efficiency diagnostics)")
    tune.set_defaults(func=_cmd_tune)

    explain = sub.add_parser(
        "explain",
        help="why the winner won: differential attribution, landscape "
             "export and model calibration from a trial archive",
    )
    explain.add_argument("--archive", required=True, metavar="PATH",
                         help="trial archive written by 'repro tune "
                              "--archive' (exit 2 if unusable)")
    explain.add_argument("--top", type=int, default=3, metavar="N",
                         help="ranking depth to print and the k of top-k "
                              "regret (default 3)")
    explain.add_argument("--json", action="store_true",
                         help="machine-readable report")
    explain.add_argument("--landscape-out", metavar="DIR",
                         help="write landscape.csv plus one Vega-Lite "
                              "heatmap spec per (RX,RY) slice here")
    explain.add_argument("--metrics-out", metavar="PATH",
                         help="export the calibration gauges "
                              "(model/estimate rank_corr and topk_regret) "
                              "here (.prom/.txt: Prometheus; else OTLP "
                              "JSON)")
    explain.set_defaults(func=_cmd_explain)

    top = sub.add_parser(
        "top", help="live view of a (running) tuning session's artifacts"
    )
    top.add_argument("--journal", metavar="PATH",
                     help="the session's crash-safe trial journal "
                          "(authoritative trial/retry counts)")
    top.add_argument("--events", metavar="PATH",
                     help="the session's structured event stream "
                          "(tier/sweep/replay state)")
    top.add_argument("--json", action="store_true",
                     help="print one machine-readable snapshot and exit")
    top.add_argument("--once", action="store_true",
                     help="render one panel and exit (implied when stdout "
                          "is not a tty)")
    top.add_argument("--interval", type=float, default=1.0, metavar="S",
                     help="refresh period in seconds (default 1.0)")
    top.add_argument("--refreshes", type=int, metavar="N",
                     help="stop after N refreshes even if the session is "
                          "still running (default: until finish/crash)")
    top.set_defaults(func=_cmd_top)

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("name", choices=(*_EXPERIMENTS, "all"))
    exp.add_argument("--out", help="output file (.csv/.json/.txt)")
    exp.add_argument("--out-dir", help="directory for 'all'")
    exp.set_defaults(func=_cmd_experiment)

    cg = sub.add_parser("codegen", help="emit kernel source for a plan")
    cg.add_argument("--kernel", default="inplane_fullslice")
    cg.add_argument("--order", type=int, default=4)
    cg.add_argument("--block", default="32,4,1,4")
    cg.add_argument("--dtype", default="sp", choices=("sp", "dp"))
    cg.add_argument("--grid", default="512,512,256")
    cg.add_argument(
        "--backend", default="cuda", choices=("cuda", "opencl", "hip", "all"),
        help="emitter backend; 'all' emits every backend "
             "(--out gains a .<backend> suffix)",
    )
    cg.add_argument("--out", help="write the source file here")
    cg.add_argument("--driver", action="store_true",
                    help="append host driver (CUDA backend only)")
    cg.set_defaults(func=_cmd_codegen)

    lint = sub.add_parser(
        "lint", help="statically analyze a kernel plan or DSL program"
    )
    lint.add_argument("--kernel", default="inplane_fullslice")
    lint.add_argument("--order", type=int, default=2)
    lint.add_argument("--block", default="32,4,1,4", help="TX,TY[,RX,RY]")
    lint.add_argument("--dtype", default="sp", choices=("sp", "dp"))
    lint.add_argument(
        "--device", default="gtx580",
        help="device for the resource/memory families ('' to skip them)",
    )
    lint.add_argument(
        "--grid", default="512,512,256",
        help="grid for coverage/halo families ('' to skip them)",
    )
    lint.add_argument("--json", action="store_true", help="machine-readable output")
    lint.add_argument(
        "--suppress", action="append", metavar="RULE",
        help="drop diagnostics of this rule id (repeatable)",
    )
    lint.add_argument(
        "--tile-stride", metavar="SX,SY",
        help="override the launch-grid tile stride (defect injection: "
             "a stride below the tile overlaps, above it leaves gaps)",
    )
    lint.add_argument("--stencil", help="inline DSL source to lint instead")
    lint.add_argument("--stencil-file", help="DSL source file to lint instead")
    lint.add_argument(
        "--emitted", action="store_true",
        help="generate all three backends (CUDA/OpenCL/HIP) for the plan "
             "and run the SRC-* emitted-source verification on each "
             "against the shared access-plan IR",
    )
    lint.set_defaults(func=_cmd_lint)

    est = sub.add_parser(
        "estimate",
        help="codegen-time performance prediction from the access-plan IR",
    )
    est.add_argument("--kernel", default="inplane_fullslice")
    est.add_argument("--order", type=int, default=4)
    est.add_argument("--block", default="32,4,1,4", help="TX,TY[,RX,RY]")
    est.add_argument("--dtype", default="sp", choices=("sp", "dp"))
    est.add_argument("--device", default="gtx580")
    est.add_argument("--grid", default="512,512,256")
    est.add_argument(
        "--reconcile", action="store_true",
        help="cross-check the estimator against the measured counters of "
             "every record in --baseline (faulted records skipped) and "
             "verify every distinct plan's emitted sources; exit 1 on "
             "any mismatch",
    )
    est.add_argument(
        "--baseline", default="BENCH_profile.json",
        help="trajectory document for --reconcile",
    )
    est.add_argument(
        "--no-verify-sources", action="store_true",
        help="skip the emitted-source verification leg of --reconcile",
    )
    est.add_argument("--json", action="store_true",
                     help="machine-readable output")
    est.set_defaults(func=_cmd_estimate)

    prof = sub.add_parser(
        "profile", help="profile on the simulated GPU (nvprof/Nsight analogue)"
    )
    prof.add_argument("--kernel", default="inplane_fullslice")
    prof.add_argument("--order", type=int, default=4)
    prof.add_argument("--block", default="32,4,1,2")
    prof.add_argument("--dtype", default="sp", choices=("sp", "dp"))
    prof.add_argument("--device", default="gtx580")
    prof.add_argument("--grid", default="512,512,256")
    prof.add_argument("--compare", action="store_true",
                      help="counter table over all loading variants instead "
                           "of the single-kernel flame report")
    prof.add_argument("--trace-out", metavar="PATH",
                      help="write a Chrome trace (Perfetto-viewable) here")
    prof.add_argument("--json", action="store_true",
                      help="machine-readable telemetry on stdout")
    prof.add_argument("--top", type=int, default=5, metavar="N",
                      help="hot planes listed in the summary (default 5)")
    prof.add_argument("--metrics-out", metavar="PATH",
                      help="export the profiler's metrics registry here "
                           "(.prom/.txt: Prometheus exposition; else "
                           "OTLP-style JSON)")
    prof.set_defaults(func=_cmd_profile)

    bench = sub.add_parser(
        "bench", help="benchmark-trajectory tools (BENCH_profile.json)"
    )
    bsub = bench.add_subparsers(dest="bench_command", required=True)
    bdiff = bsub.add_parser(
        "diff",
        help="resimulate a recorded baseline and report regressions "
             "(exit 1 on any slowdown; deterministic, so exact by default)",
    )
    bdiff.add_argument(
        "--baseline", default="BENCH_profile.json",
        help="trajectory document to diff against (v1 or v2)",
    )
    bdiff.add_argument(
        "--tolerance", type=float, default=0.0, metavar="REL",
        help="relative MPoint/s slack before a move counts (default exact)",
    )
    bdiff.add_argument("--json", action="store_true",
                       help="machine-readable diff on stdout")
    bdiff.add_argument("--jobs", type=int, metavar="N",
                       help="resimulate records on N worker processes "
                            "(records are independent; order preserved)")
    bdiff.set_defaults(func=_cmd_bench_diff)

    sc = sub.add_parser("scaling", help="multi-GPU slab scaling cost model")
    sc.add_argument("--kernel", default="inplane_fullslice")
    sc.add_argument("--order", type=int, default=2)
    sc.add_argument("--block", default="64,4,4,2")
    sc.add_argument("--dtype", default="sp", choices=("sp", "dp"))
    sc.add_argument("--device", default="gtx580")
    sc.add_argument("--grid", default="512,512,256")
    sc.add_argument("--gpus", default="1,2,4,8")
    sc.add_argument("--weak", action="store_true")
    sc.add_argument("--overlap", type=float, default=0.0)
    sc.set_defaults(func=_cmd_scaling)

    cluster = sub.add_parser(
        "cluster",
        help="fault-tolerant multi-GPU stepping campaigns",
    )
    csub = cluster.add_subparsers(dest="cluster_command", required=True)
    crun = csub.add_parser(
        "run",
        help="run a resilient stepping campaign (retry/quarantine/resume)",
    )
    crun.add_argument("--kernel", default="inplane_fullslice")
    crun.add_argument("--order", type=int, default=2)
    crun.add_argument("--block", default="16,4,1,2")
    crun.add_argument("--dtype", default="sp", choices=("sp", "dp"))
    crun.add_argument("--device", default="gtx580")
    crun.add_argument("--grid", default="32,16,48", help="LX,LY,LZ")
    crun.add_argument("--grid-seed", type=int, default=20130520,
                      help="seed of the deterministic initial condition")
    crun.add_argument("--gpus", type=int, default=4)
    crun.add_argument("--steps", type=int, default=8)
    crun.add_argument("--overlap", type=float, default=0.0)
    crun.add_argument("--faults", metavar="SPEC",
                      help="cluster fault plan, e.g. "
                           "'seed=7,corrupt=0.2,dropout=0.05,degrade=0.1'")
    crun.add_argument("--max-retries", type=int, default=3,
                      help="halo-exchange retries before the fleet gives up")
    crun.add_argument("--min-gpus", type=int, default=1,
                      help="smallest fleet the campaign may shrink to")
    crun.add_argument("--checkpoint", metavar="PATH",
                      help="crash-safe grid snapshot file")
    crun.add_argument("--every", type=int, default=0,
                      help="checkpoint after every N completed steps")
    crun.add_argument("--resume", action="store_true",
                      help="resume from --checkpoint instead of step 0")
    crun.add_argument("--events", metavar="PATH",
                      help="stream cluster.* events to this JSONL file")
    crun.add_argument("--trace", metavar="PATH")
    crun.add_argument("--metrics-out", metavar="PATH")
    crun.add_argument("--json", action="store_true",
                      help="machine-readable result (digest, fleet, retries)")
    crun.set_defaults(func=_cmd_cluster_run)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    _setup_logging(-1 if args.quiet else args.verbose)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
