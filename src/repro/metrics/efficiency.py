"""Metric conversions used throughout the harness.

The paper reports MPoint/s for its own results and GFlop/s when comparing
with prior work (section V-B); these helpers keep the conversion in one
place, parameterized by the flops-per-point of the formulation being
credited.
"""

from __future__ import annotations


def mpoints_to_gflops(mpoints_per_s: float, flops_per_point: float) -> float:
    """Convert a point rate to a flop rate."""
    if mpoints_per_s < 0:
        raise ValueError("rate must be non-negative")
    return mpoints_per_s * 1e6 * flops_per_point / 1e9


def gflops_to_mpoints(gflops: float, flops_per_point: float) -> float:
    """Convert a flop rate to a point rate."""
    if flops_per_point <= 0:
        raise ValueError("flops_per_point must be positive")
    return gflops * 1e9 / flops_per_point / 1e6


def speedup(candidate_mpoints: float, baseline_mpoints: float) -> float:
    """Candidate over baseline; the paper's headline ratio."""
    if baseline_mpoints <= 0:
        raise ValueError("baseline rate must be positive")
    return candidate_mpoints / baseline_mpoints


def bandwidth_bound_mpoints(
    bandwidth_gbs: float, bytes_per_point: float
) -> float:
    """Roofline: the point rate a pure-bandwidth kernel could reach.

    Useful for sanity-checking simulated results: a perfectly-streaming
    order-2 SP stencil moves ~8 bytes per point (one read, one write), so
    161 GB/s caps it at ~20e3 MPoint/s — the paper's best measured
    17294 MPoint/s is ~86% of that roofline.
    """
    if bytes_per_point <= 0:
        raise ValueError("bytes_per_point must be positive")
    return bandwidth_gbs * 1e9 / bytes_per_point / 1e6
