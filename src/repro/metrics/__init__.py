"""Performance metrics and unit conversions."""

from repro.metrics.efficiency import (
    mpoints_to_gflops,
    gflops_to_mpoints,
    speedup,
    bandwidth_bound_mpoints,
)

__all__ = [
    "mpoints_to_gflops",
    "gflops_to_mpoints",
    "speedup",
    "bandwidth_bound_mpoints",
]
