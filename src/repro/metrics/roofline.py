"""Roofline analysis of kernel configurations.

Classifies a kernel configuration on a device as bandwidth- or
compute-bound and reports how close the simulated result comes to the
binding ceiling.  The paper reasons this way implicitly — "the 2nd order
SP stencil is bandwidth-limited" (section V-B), DP high orders hit the
GTX680's 1/24 DP throughput — and this module makes the reasoning a
queryable object (used by the autotune example and the analysis tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec
from repro.gpusim.executor import simulate
from repro.gpusim.report import SimReport
from repro.kernels.base import KernelPlan


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel configuration placed on a device's roofline.

    Attributes
    ----------
    arithmetic_intensity:
        Flops per byte actually moved (post-L2-model, per plane).
    ridge_intensity:
        The device's peak-flops / bandwidth ridge point (flops/byte).
    bandwidth_bound:
        True when the configuration sits left of the ridge.
    ceiling_mpoints:
        MPoint/s the binding roof permits for this kernel's per-point
        costs.
    achieved_mpoints / efficiency:
        The simulated rate and its fraction of the ceiling.
    """

    arithmetic_intensity: float
    ridge_intensity: float
    bandwidth_bound: bool
    ceiling_mpoints: float
    achieved_mpoints: float

    @property
    def efficiency(self) -> float:
        """Achieved fraction of the binding ceiling, in (0, 1]."""
        if self.ceiling_mpoints <= 0:
            return 0.0
        return min(1.0, self.achieved_mpoints / self.ceiling_mpoints)

    def summary(self) -> str:
        bound = "bandwidth" if self.bandwidth_bound else "compute"
        return (
            f"{bound}-bound: AI {self.arithmetic_intensity:.2f} flop/B "
            f"(ridge {self.ridge_intensity:.2f}), "
            f"{self.achieved_mpoints:.0f} of {self.ceiling_mpoints:.0f} MPt/s "
            f"ceiling ({self.efficiency:.0%})"
        )


def roofline(
    plan: KernelPlan,
    device: DeviceSpec,
    grid_shape: tuple[int, int, int],
    report: SimReport | None = None,
) -> RooflinePoint:
    """Place ``plan`` on ``device``'s roofline for ``grid_shape``.

    ``report`` may be passed to reuse an existing simulation; otherwise
    one sweep is simulated.
    """
    from repro.gpusim.timing import time_kernel

    workload = plan.block_workload(device, grid_shape)
    rep = report or simulate(plan, device, grid_shape)

    # Price bytes the way the memory system does: after L2 halo reuse and
    # including the partition-camping surcharge — otherwise cached kernels
    # would "beat" a transferred-bytes roofline.
    timing = time_kernel(workload, plan.grid_workload(device, grid_shape), device)
    bytes_per_plane = timing.effective_bytes_per_plane
    flops_per_plane = workload.points_per_plane * workload.flops_per_point
    intensity = flops_per_plane / bytes_per_plane if bytes_per_plane else float("inf")

    peak_flops = (
        device.peak_sp_gflops if workload.elem_bytes == 4 else device.peak_dp_gflops
    ) * 1e9
    bw = device.measured_bandwidth_gbs * 1e9
    ridge = peak_flops / bw

    bytes_per_point = bytes_per_plane / workload.points_per_plane
    flops_per_point = workload.flops_per_point
    bw_ceiling = bw / bytes_per_point / 1e6
    compute_ceiling = peak_flops / flops_per_point / 1e6

    bandwidth_bound = intensity < ridge
    ceiling = min(bw_ceiling, compute_ceiling)
    return RooflinePoint(
        arithmetic_intensity=intensity,
        ridge_intensity=ridge,
        bandwidth_bound=bandwidth_bound,
        ceiling_mpoints=ceiling,
        achieved_mpoints=rep.mpoints_per_s,
    )
