"""Iterative solvers built on the stencil kernels.

The paper frames stencil kernels as the inner loop of PDE solvers
(section III-A); this module supplies that outer loop as a library object:
a (weighted-)Jacobi solver for the discrete Poisson equation, running on
any of the kernel schedules, with a convergence history and the standard
stopping criteria.  It exists both as user-facing API and as the
integration-level exercise of the multi-grid kernels (the solver tests
check actual convergence rates, not just single sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError
from repro.kernels.config import BlockConfig
from repro.kernels.multigrid import MultiGridKernel
from repro.stencils.applications import laplacian, poisson
from repro.stencils.reference import apply_expr

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.gpusim.faults import FaultPlan

#: ``SolveResult.status`` vocabulary.
STATUS_CONVERGED = "converged"
STATUS_MAX_ITERATIONS = "max_iterations"
STATUS_DIVERGED = "diverged"
STATUS_NON_FINITE = "non_finite"


@dataclass
class SolveResult:
    """Outcome of a Poisson solve.

    Attributes
    ----------
    solution:
        The final iterate.
    iterations:
        Sweeps executed.
    converged:
        True when the residual criterion was met within the budget.
    residual_history:
        Max-norm residual ``|lap(u) - f|`` sampled every ``check_every``
        sweeps (including the final one).
    status:
        ``"converged"``, ``"max_iterations"``, ``"diverged"`` (the
        residual blew up relative to the best seen — the iteration is
        actively getting worse, so burning the remaining budget is
        pointless) or ``"non_finite"`` (NaN/Inf contaminated the iterate
        or the residual, e.g. an injected ECC event).  The last two stop
        the solve early.
    faults:
        Number of injected faults that perturbed the iterate (0 without
        a fault plan).
    """

    solution: np.ndarray
    iterations: int
    converged: bool
    residual_history: list[float] = field(default_factory=list)
    status: str = STATUS_MAX_ITERATIONS
    faults: int = 0

    @property
    def diverged(self) -> bool:
        """Did the solve stop early on divergence or NaN/Inf?"""
        return self.status in (STATUS_DIVERGED, STATUS_NON_FINITE)


class JacobiPoissonSolver:
    """Weighted-Jacobi solver for ``lap(u) = f`` with Dirichlet boundaries.

    ``weight`` is the damping factor omega (1.0 = plain Jacobi; 2/3 is the
    classic smoothing choice).  The boundary values of the initial guess
    are held fixed — the kernels never write the boundary ring.
    """

    def __init__(
        self,
        block: BlockConfig | tuple[int, ...] = (16, 4),
        dtype: str = "dp",
        method: str = "inplane",
        weight: float = 1.0,
    ) -> None:
        if not 0.0 < weight <= 1.0:
            raise ConfigurationError(f"weight must be in (0, 1], got {weight}")
        if not isinstance(block, BlockConfig):
            block = BlockConfig(*block)
        self.weight = weight
        self.kernel = MultiGridKernel(poisson(), block, dtype, method=method)
        self._laplacian = laplacian()

    def residual(self, u: np.ndarray, f: np.ndarray) -> float:
        """Max-norm of ``lap(u) - f`` over the deep interior."""
        lap = apply_expr(self._laplacian, [u])[0]
        core = (slice(2, -2),) * 3
        return float(np.abs(lap[core] - f[core]).max())

    def solve(
        self,
        f: np.ndarray,
        u0: np.ndarray,
        *,
        tol: float = 1e-6,
        max_iterations: int = 5000,
        check_every: int = 25,
        faults: "FaultPlan | None" = None,
        divergence_factor: float = 1e3,
    ) -> SolveResult:
        """Iterate until the residual drops below ``tol``.

        ``u0`` supplies both the initial guess and the fixed boundary
        values.  Each residual check also guards the iteration: a NaN/Inf
        iterate or residual stops the solve with ``status="non_finite"``,
        and a residual exceeding ``divergence_factor`` times the best one
        seen stops it with ``status="diverged"`` — both report honestly
        instead of silently burning the remaining sweep budget.

        ``faults`` (a :class:`repro.gpusim.faults.FaultPlan`) perturbs
        the iterate after each sweep on the plan's ``solver`` stream —
        the deterministic stand-in for device-memory ECC events that the
        guards above are tested against.
        """
        from repro.gpusim.faults import STREAM_SOLVER, observe_fault
        from repro.obs.tracer import current_tracer

        if tol <= 0:
            raise ConfigurationError("tol must be positive")
        if max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")
        u = np.asarray(u0, dtype=self.kernel.dtype).copy()
        f = np.asarray(f, dtype=self.kernel.dtype)
        history: list[float] = []
        tracer = current_tracer()
        injected = 0
        best = np.inf

        for it in range(1, max_iterations + 1):
            nxt = self.kernel.execute(u, f)[0]
            if self.weight != 1.0:
                nxt = (1.0 - self.weight) * u + self.weight * nxt
            u = nxt
            if faults is not None:
                event = faults.corrupt(u, STREAM_SOLVER)
                if event is not None:
                    observe_fault(tracer, event, sweep=it, stream=STREAM_SOLVER)
                    injected += 1
            if it % check_every == 0 or it == max_iterations:
                res = self.residual(u, f)
                history.append(res)
                if not np.isfinite(res) or not np.isfinite(u).all():
                    return SolveResult(
                        solution=u, iterations=it, converged=False,
                        residual_history=history, status=STATUS_NON_FINITE,
                        faults=injected,
                    )
                if res < tol:
                    return SolveResult(
                        solution=u, iterations=it, converged=True,
                        residual_history=history, status=STATUS_CONVERGED,
                        faults=injected,
                    )
                if res > divergence_factor * max(best, tol):
                    return SolveResult(
                        solution=u, iterations=it, converged=False,
                        residual_history=history, status=STATUS_DIVERGED,
                        faults=injected,
                    )
                best = min(best, res)
        return SolveResult(
            solution=u, iterations=max_iterations, converged=False,
            residual_history=history, status=STATUS_MAX_ITERATIONS,
            faults=injected,
        )


def jacobi_spectral_bound(shape: tuple[int, int, int]) -> float:
    """Jacobi iteration-matrix spectral radius for the 7-point Laplacian.

    ``rho = (cos(pi/(nx-1)) + cos(pi/(ny-1)) + cos(pi/(nz-1))) / 3`` for a
    Dirichlet box — the asymptotic per-sweep error contraction the solver
    tests compare measured rates against.
    """
    lz, ly, lx = shape
    if min(shape) < 3:
        raise ConfigurationError("grid too small for an interior")
    return float(
        (np.cos(np.pi / (lx - 1)) + np.cos(np.pi / (ly - 1)) + np.cos(np.pi / (lz - 1)))
        / 3.0
    )
