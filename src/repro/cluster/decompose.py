"""Slab decomposition along z with ghost planes.

Each GPU owns a contiguous range of z-planes plus ``radius`` ghost planes
per interior interface.  One simulation step is then: sweep every slab
(the kernels compute exactly the owned planes, because their z-boundary
ring equals the ghost width), then refresh the ghosts from the
neighbours' freshly computed interiors.  The decomposition is *exact*:
``merge(sweep+exchange over slabs) == sweep(whole grid)`` plane for
plane, which the property tests assert over multiple steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import GridShapeError, HaloExchangeError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.gpusim.faults import FaultPlan


@dataclass
class Slab:
    """One GPU's piece of the grid.

    Attributes
    ----------
    index:
        Position in the z-order of slabs.
    z_start / z_stop:
        Owned plane range within the global grid (half-open).
    ghost_lo / ghost_hi:
        Ghost planes held below / above the owned range (0 at the domain
        ends, ``radius`` at interior interfaces).
    data:
        The local array, shape ``(ghost_lo + owned + ghost_hi, ly, lx)``.
    """

    index: int
    z_start: int
    z_stop: int
    ghost_lo: int
    ghost_hi: int
    data: np.ndarray

    @property
    def owned(self) -> int:
        """Number of owned planes."""
        return self.z_stop - self.z_start

    def interior_view(self) -> np.ndarray:
        """View of the owned planes within the local array."""
        stop = self.ghost_lo + self.owned
        return self.data[self.ghost_lo : stop]


def slab_extents(
    lz: int, parts: int, radius: int
) -> list[tuple[int, int, int]]:
    """Per-slab ``(owned, ghost_lo, ghost_hi)`` plane counts — no arrays.

    The single source of the decomposition arithmetic: :func:`split_grid`
    materializes exactly these extents, and the cost model derives the
    straggler slab's true thickness from them (``owned + ghost_lo +
    ghost_hi``) instead of approximating it.  Plane counts are balanced
    to within one (the remainder goes to the *leading* slabs); every
    slab must own at least ``radius`` planes so a single exchange per
    step suffices.
    """
    if parts < 1:
        raise GridShapeError(f"parts must be >= 1, got {parts}")
    if radius < 1:
        raise GridShapeError(f"radius must be >= 1, got {radius}")
    base, extra = divmod(lz, parts)
    if base < radius:
        raise GridShapeError(
            f"cannot split {lz} planes into {parts} slabs of >= {radius} "
            f"planes each (radius {radius})"
        )
    return [
        (
            base + (1 if i < extra else 0),
            radius if i > 0 else 0,
            radius if i < parts - 1 else 0,
        )
        for i in range(parts)
    ]


def split_grid(grid: np.ndarray, parts: int, radius: int) -> list[Slab]:
    """Split ``grid`` into ``parts`` z-slabs with ``radius`` ghosts.

    Plane counts follow :func:`slab_extents`: balanced to within one,
    every slab owning at least ``radius`` planes.
    """
    if grid.ndim != 3:
        raise GridShapeError(f"expected a 3D grid, got shape {grid.shape}")
    extents = slab_extents(grid.shape[0], parts, radius)

    slabs: list[Slab] = []
    z0 = 0
    for i, (owned, ghost_lo, ghost_hi) in enumerate(extents):
        z1 = z0 + owned
        local = grid[z0 - ghost_lo : z1 + ghost_hi].copy()
        slabs.append(
            Slab(
                index=i,
                z_start=z0,
                z_stop=z1,
                ghost_lo=ghost_lo,
                ghost_hi=ghost_hi,
                data=local,
            )
        )
        z0 = z1
    return slabs


def exchange_halos(
    slabs: list[Slab],
    *,
    faults: "FaultPlan | None" = None,
    validate: bool = False,
) -> int:
    """Refresh every ghost plane from its neighbour's owned interior.

    Returns the number of planes moved (the quantity the cost model
    prices).  Mirrors a pairwise `cudaMemcpyPeer`/MPI exchange: lower
    ghosts receive the top of the slab below, upper ghosts the bottom of
    the slab above.

    ``faults`` (a :class:`repro.gpusim.faults.FaultPlan`) perturbs
    transferred ghost regions on the plan's ``exchange`` stream — the
    stand-in for a corrupted PCIe/MPI transfer.  ``validate`` re-checks
    every ghost plane against its source after the exchange and raises
    :class:`repro.errors.HaloExchangeError` on any mismatch or
    non-finite ghost, which is how a corrupted transfer is caught before
    it silently poisons the next sweep.
    """
    from repro.gpusim.faults import STREAM_EXCHANGE, observe_fault
    from repro.obs.tracer import current_tracer

    tracer = current_tracer()
    moved = 0
    for lo, hi in zip(slabs, slabs[1:]):
        r_up = hi.ghost_lo
        if r_up:
            hi.data[:r_up] = lo.interior_view()[lo.owned - r_up :]
            moved += r_up
            if faults is not None:
                event = faults.corrupt(hi.data[:r_up], STREAM_EXCHANGE)
                if event is not None:
                    observe_fault(
                        tracer, event, stream=STREAM_EXCHANGE, slab=hi.index,
                    )
        r_dn = lo.ghost_hi
        if r_dn:
            lo.data[lo.ghost_lo + lo.owned :] = hi.interior_view()[:r_dn]
            moved += r_dn
            if faults is not None:
                event = faults.corrupt(
                    lo.data[lo.ghost_lo + lo.owned :], STREAM_EXCHANGE
                )
                if event is not None:
                    observe_fault(
                        tracer, event, stream=STREAM_EXCHANGE, slab=lo.index,
                    )
    if validate:
        validate_halos(slabs)
    return moved


def validate_halos(slabs: list[Slab]) -> None:
    """Check every ghost plane is finite and matches its source exactly.

    The integrity check a defensive exchange runs before trusting its
    received buffers; raises :class:`repro.errors.HaloExchangeError`
    naming the receiving slab and direction on the first violation.
    """
    for lo, hi in zip(slabs, slabs[1:]):
        pairs = (
            (hi, "lower", hi.data[: hi.ghost_lo],
             lo.interior_view()[lo.owned - hi.ghost_lo :] if hi.ghost_lo else None),
            (lo, "upper", lo.data[lo.ghost_lo + lo.owned :],
             hi.interior_view()[: lo.ghost_hi] if lo.ghost_hi else None),
        )
        for slab, side, ghost, source in pairs:
            if source is None or not len(ghost):
                continue
            if not np.isfinite(ghost).all():
                raise HaloExchangeError(
                    f"slab {slab.index}: non-finite value in {side} ghost "
                    f"planes after exchange"
                )
            if not np.array_equal(ghost, source):
                bad = int(np.argmax(np.any(ghost != source, axis=(1, 2))))
                raise HaloExchangeError(
                    f"slab {slab.index}: {side} ghost plane {bad} does not "
                    f"match its neighbour's interior (corrupted transfer)"
                )


def merge_slabs(slabs: list[Slab]) -> np.ndarray:
    """Reassemble the global grid from the slabs' owned planes."""
    if not slabs:
        raise GridShapeError("no slabs to merge")
    total = slabs[-1].z_stop
    _, ly, lx = slabs[0].data.shape
    out = np.empty((total, ly, lx), dtype=slabs[0].data.dtype)
    for slab in slabs:
        out[slab.z_start : slab.z_stop] = slab.interior_view()
    return out
