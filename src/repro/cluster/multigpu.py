"""Multi-GPU stencil stepping: exact numerics plus a scaling cost model.

Per simulation step, every GPU sweeps its slab (priced by the GPU
simulator on the slab's shape) and then exchanges ``radius`` halo planes
with each neighbour over the interconnect.  The step time is

    max over GPUs(kernel time) + (1 - overlap) * exchange time,

where ``overlap`` models how much of the transfer hides behind compute
(boundary-first scheduling).  This produces the era's canonical scaling
behaviour: near-linear strong scaling while slabs are thick, saturating
when the per-step exchange (which does not shrink with more GPUs)
dominates the shrinking kernel time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import ConfigurationError, GridShapeError
from repro.cluster.decompose import (
    exchange_halos,
    merge_slabs,
    slab_extents,
    split_grid,
)
from repro.gpusim.device import DeviceSpec, get_device
from repro.gpusim.executor import DeviceExecutor
from repro.kernels.symmetric import SymmetricKernelPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.gpusim.faults import FaultPlan


@dataclass(frozen=True)
class LinkSpec:
    """Interconnect between GPUs.

    Attributes
    ----------
    bandwidth_gbs:
        Effective point-to-point bandwidth (GB/s), both directions summed
        per interface per step.
    latency_us:
        Per-transfer setup latency (microseconds).
    """

    name: str
    bandwidth_gbs: float
    latency_us: float

    def transfer_time_s(self, bytes_moved: float, transfers: int) -> float:
        """Seconds to move ``bytes_moved`` in ``transfers`` operations."""
        if bytes_moved < 0 or transfers < 0:
            raise ConfigurationError("transfer accounting must be non-negative")
        return transfers * self.latency_us * 1e-6 + bytes_moved / (
            self.bandwidth_gbs * 1e9
        )

    def degraded(self, factor: float) -> "LinkSpec":
        """This link with its bandwidth derated by ``factor`` (>= 1).

        How the cluster fault plane's bandwidth flapping is priced: a
        degraded step charges ``transfer_time_s`` on the derated link,
        latency unchanged (flapping throttles the payload rate, not the
        setup cost).  ``factor == 1.0`` returns ``self`` unchanged.
        """
        if factor < 1.0:
            raise ConfigurationError(f"degrade factor must be >= 1, got {factor}")
        if factor == 1.0:
            return self
        return LinkSpec(
            name=f"{self.name}/x{factor:.2f}",
            bandwidth_gbs=self.bandwidth_gbs / factor,
            latency_us=self.latency_us,
        )


#: PCIe 2.0 x16 through host memory — the 2013-era default path.
PCIE_GEN2_X16 = LinkSpec(name="pcie2-x16", bandwidth_gbs=6.0, latency_us=10.0)

#: Direct peer-to-peer over a shared PCIe switch.
PCIE_P2P = LinkSpec(name="pcie2-p2p", bandwidth_gbs=10.0, latency_us=6.0)


def exchange_cost_s(
    link: LinkSpec, *, interfaces: int, bytes_per_interface: float
) -> float:
    """Per-step halo-exchange time over ``interfaces`` on ``link``.

    All interfaces transfer concurrently only if links are disjoint;
    through a shared host path they serialize per neighbour pair on the
    busiest GPU (2 transfers), which the latency term reflects.  Shared
    by :meth:`MultiGpuStencil.step_cost` and the resilient engine's
    per-step (possibly degraded-link) accounting.
    """
    if interfaces == 0:
        return 0.0
    total = link.transfer_time_s(
        bytes_per_interface * interfaces, transfers=2 * interfaces
    )
    return max(
        total / interfaces,
        link.transfer_time_s(bytes_per_interface, transfers=2),
    )


@dataclass(frozen=True)
class ScalingPoint:
    """Cost-model outcome for one GPU count."""

    gpus: int
    kernel_time_s: float
    exchange_time_s: float
    step_time_s: float
    mpoints_per_s: float
    speedup: float
    efficiency: float


class MultiGpuStencil:
    """Slab-decomposed stencil stepping across identical GPUs."""

    def __init__(
        self,
        plan_builder: Callable[[], SymmetricKernelPlan],
        device: DeviceSpec | str,
        link: LinkSpec = PCIE_GEN2_X16,
        overlap: float = 0.0,
    ) -> None:
        if not 0.0 <= overlap <= 1.0:
            raise ConfigurationError(f"overlap must be in [0, 1], got {overlap}")
        self.plan_builder = plan_builder
        self.device = get_device(device) if isinstance(device, str) else device
        self.link = link
        self.overlap = overlap
        # Single-GPU step time per grid shape: the speedup baseline every
        # step_cost() shares, so an N-point scaling curve simulates the
        # whole grid once instead of N times.
        self._single_time_cache: dict[tuple[int, int, int], float] = {}

    # ------------------------------------------------------------------
    # Numerics
    # ------------------------------------------------------------------
    def run_steps(
        self,
        grid: np.ndarray,
        gpus: int,
        steps: int,
        *,
        faults: "FaultPlan | None" = None,
        validate: bool = False,
    ) -> np.ndarray:
        """Execute ``steps`` sweeps with the slab-exchange schedule.

        Numerically exact: equals ``steps`` sweeps of the whole grid.
        ``faults`` / ``validate`` are forwarded to
        :func:`repro.cluster.decompose.exchange_halos` — with validation
        on, a corrupted transfer raises
        :class:`repro.errors.HaloExchangeError` instead of silently
        contaminating subsequent sweeps.
        """
        plan = self.plan_builder()
        radius = plan.halo_radius()
        slabs = split_grid(np.asarray(grid, dtype=plan.dtype), gpus, radius)
        for _ in range(steps):
            for slab in slabs:
                slab.data = plan.execute(slab.data)
            exchange_halos(slabs, faults=faults, validate=validate)
        return merge_slabs(slabs)

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def _single_step_time(
        self,
        executor: DeviceExecutor,
        plan: SymmetricKernelPlan,
        grid_shape: tuple[int, int, int],
    ) -> float:
        """Memoized single-GPU sweep time of the whole grid (the speedup
        baseline shared by every point of a scaling curve)."""
        cached = self._single_time_cache.get(grid_shape)
        if cached is None:
            cached = executor.run(plan, grid_shape).time_s
            self._single_time_cache[grid_shape] = cached
        return cached

    def step_cost(
        self, grid_shape: tuple[int, int, int], gpus: int, *, link: LinkSpec | None = None
    ) -> ScalingPoint:
        """Per-step time and rate for ``gpus`` slabs of ``grid_shape``.

        ``link`` overrides the interconnect for this one point — how the
        resilient engine prices a degraded-bandwidth step without
        perturbing the nominal model.
        """
        lx, ly, lz = grid_shape
        plan = self.plan_builder()
        radius = plan.halo_radius()
        try:
            extents = slab_extents(lz, gpus, radius)
        except GridShapeError as exc:
            raise ConfigurationError(
                f"{gpus} GPUs leave slabs thinner than the radius {radius}"
            ) from exc
        executor = DeviceExecutor(self.device)
        link = self.link if link is None else link

        # The thickest slab is the straggler every step waits for; its
        # true shape (owned planes plus the ghosts it actually holds)
        # comes from the decomposition itself — end slabs carry the
        # remainder planes but only one ghost region.
        thickest = max(owned + lo + hi for owned, lo, hi in extents)
        if gpus == 1:
            kernel_time = self._single_step_time(executor, plan, grid_shape)
        else:
            kernel_time = executor.run(plan, (lx, ly, thickest)).time_s

        interfaces = gpus - 1
        if interfaces == 0:
            exchange_time = 0.0
        else:
            bytes_per_interface = 2 * radius * lx * ly * plan.elem_bytes
            total = link.transfer_time_s(
                bytes_per_interface * interfaces, transfers=2 * interfaces
            )
            # All interfaces transfer concurrently only if links are
            # disjoint; through a shared host path they serialize per
            # neighbour pair on the busiest GPU (2 transfers), which the
            # latency term reflects.
            exchange_time = max(
                total / interfaces,
                link.transfer_time_s(bytes_per_interface, transfers=2),
            )

        step_time = kernel_time + (1.0 - self.overlap) * exchange_time
        single = (
            self._single_step_time(executor, plan, grid_shape)
            if gpus > 1 else step_time
        )
        mpoints = lx * ly * lz / step_time / 1e6
        speedup = single / step_time
        return ScalingPoint(
            gpus=gpus,
            kernel_time_s=kernel_time,
            exchange_time_s=exchange_time,
            step_time_s=step_time,
            mpoints_per_s=mpoints,
            speedup=speedup,
            efficiency=speedup / gpus,
        )

    def strong_scaling(
        self, grid_shape: tuple[int, int, int], gpu_counts: tuple[int, ...]
    ) -> list[ScalingPoint]:
        """Fixed problem, growing GPU count."""
        return [self.step_cost(grid_shape, g) for g in gpu_counts]

    def weak_scaling(
        self,
        base_shape: tuple[int, int, int],
        gpu_counts: tuple[int, ...],
    ) -> list[ScalingPoint]:
        """Problem grows with the GPU count (lz scales)."""
        lx, ly, lz = base_shape
        return [self.step_cost((lx, ly, lz * g), g) for g in gpu_counts]
