"""Multi-GPU stencil stepping: exact numerics plus a scaling cost model.

Per simulation step, every GPU sweeps its slab (priced by the GPU
simulator on the slab's shape) and then exchanges ``radius`` halo planes
with each neighbour over the interconnect.  The step time is

    max over GPUs(kernel time) + (1 - overlap) * exchange time,

where ``overlap`` models how much of the transfer hides behind compute
(boundary-first scheduling).  This produces the era's canonical scaling
behaviour: near-linear strong scaling while slabs are thick, saturating
when the per-step exchange (which does not shrink with more GPUs)
dominates the shrinking kernel time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.cluster.decompose import Slab, exchange_halos, merge_slabs, split_grid
from repro.gpusim.device import DeviceSpec, get_device
from repro.gpusim.executor import DeviceExecutor
from repro.kernels.symmetric import SymmetricKernelPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.gpusim.faults import FaultPlan


@dataclass(frozen=True)
class LinkSpec:
    """Interconnect between GPUs.

    Attributes
    ----------
    bandwidth_gbs:
        Effective point-to-point bandwidth (GB/s), both directions summed
        per interface per step.
    latency_us:
        Per-transfer setup latency (microseconds).
    """

    name: str
    bandwidth_gbs: float
    latency_us: float

    def transfer_time_s(self, bytes_moved: float, transfers: int) -> float:
        """Seconds to move ``bytes_moved`` in ``transfers`` operations."""
        if bytes_moved < 0 or transfers < 0:
            raise ConfigurationError("transfer accounting must be non-negative")
        return transfers * self.latency_us * 1e-6 + bytes_moved / (
            self.bandwidth_gbs * 1e9
        )


#: PCIe 2.0 x16 through host memory — the 2013-era default path.
PCIE_GEN2_X16 = LinkSpec(name="pcie2-x16", bandwidth_gbs=6.0, latency_us=10.0)

#: Direct peer-to-peer over a shared PCIe switch.
PCIE_P2P = LinkSpec(name="pcie2-p2p", bandwidth_gbs=10.0, latency_us=6.0)


@dataclass(frozen=True)
class ScalingPoint:
    """Cost-model outcome for one GPU count."""

    gpus: int
    kernel_time_s: float
    exchange_time_s: float
    step_time_s: float
    mpoints_per_s: float
    speedup: float
    efficiency: float


class MultiGpuStencil:
    """Slab-decomposed stencil stepping across identical GPUs."""

    def __init__(
        self,
        plan_builder: Callable[[], SymmetricKernelPlan],
        device: DeviceSpec | str,
        link: LinkSpec = PCIE_GEN2_X16,
        overlap: float = 0.0,
    ) -> None:
        if not 0.0 <= overlap <= 1.0:
            raise ConfigurationError(f"overlap must be in [0, 1], got {overlap}")
        self.plan_builder = plan_builder
        self.device = get_device(device) if isinstance(device, str) else device
        self.link = link
        self.overlap = overlap

    # ------------------------------------------------------------------
    # Numerics
    # ------------------------------------------------------------------
    def run_steps(
        self,
        grid: np.ndarray,
        gpus: int,
        steps: int,
        *,
        faults: "FaultPlan | None" = None,
        validate: bool = False,
    ) -> np.ndarray:
        """Execute ``steps`` sweeps with the slab-exchange schedule.

        Numerically exact: equals ``steps`` sweeps of the whole grid.
        ``faults`` / ``validate`` are forwarded to
        :func:`repro.cluster.decompose.exchange_halos` — with validation
        on, a corrupted transfer raises
        :class:`repro.errors.HaloExchangeError` instead of silently
        contaminating subsequent sweeps.
        """
        plan = self.plan_builder()
        radius = plan.halo_radius()
        slabs = split_grid(np.asarray(grid, dtype=plan.dtype), gpus, radius)
        for _ in range(steps):
            for slab in slabs:
                slab.data = plan.execute(slab.data)
            exchange_halos(slabs, faults=faults, validate=validate)
        return merge_slabs(slabs)

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def step_cost(
        self, grid_shape: tuple[int, int, int], gpus: int
    ) -> ScalingPoint:
        """Per-step time and rate for ``gpus`` slabs of ``grid_shape``."""
        lx, ly, lz = grid_shape
        plan = self.plan_builder()
        radius = plan.halo_radius()
        base, extra = divmod(lz, gpus)
        if base < radius:
            raise ConfigurationError(
                f"{gpus} GPUs leave slabs thinner than the radius {radius}"
            )
        executor = DeviceExecutor(self.device)

        # The thickest slab is the straggler every step waits for.
        thickest = base + (1 if extra else 0)
        ghosts = (radius if gpus > 1 else 0) * (2 if gpus > 2 else 1)
        report = executor.run(plan, (lx, ly, thickest + ghosts))
        kernel_time = report.time_s

        interfaces = gpus - 1
        if interfaces == 0:
            exchange_time = 0.0
        else:
            bytes_per_interface = 2 * radius * lx * ly * plan.elem_bytes
            total = self.link.transfer_time_s(
                bytes_per_interface * interfaces, transfers=2 * interfaces
            )
            # All interfaces transfer concurrently only if links are
            # disjoint; through a shared host path they serialize per
            # neighbour pair on the busiest GPU (2 transfers), which the
            # latency term reflects.
            exchange_time = max(
                total / interfaces,
                self.link.transfer_time_s(bytes_per_interface, transfers=2),
            )

        step_time = kernel_time + (1.0 - self.overlap) * exchange_time
        single = executor.run(plan, grid_shape).time_s if gpus > 1 else step_time
        mpoints = lx * ly * lz / step_time / 1e6
        speedup = single / step_time
        return ScalingPoint(
            gpus=gpus,
            kernel_time_s=kernel_time,
            exchange_time_s=exchange_time,
            step_time_s=step_time,
            mpoints_per_s=mpoints,
            speedup=speedup,
            efficiency=speedup / gpus,
        )

    def strong_scaling(
        self, grid_shape: tuple[int, int, int], gpu_counts: tuple[int, ...]
    ) -> list[ScalingPoint]:
        """Fixed problem, growing GPU count."""
        return [self.step_cost(grid_shape, g) for g in gpu_counts]

    def weak_scaling(
        self,
        base_shape: tuple[int, int, int],
        gpu_counts: tuple[int, ...],
    ) -> list[ScalingPoint]:
        """Problem grows with the GPU count (lz scales)."""
        lx, ly, lz = base_shape
        return [self.step_cost((lx, ly, lz * g), g) for g in gpu_counts]
