"""Crash-safe grid checkpoints for cluster-scale stepping campaigns.

A checkpoint captures everything a campaign needs to resume bit-exactly:
the merged global grid after a completed step, the step index, the
surviving/quarantined fleet, and the recovery-ladder accounting totals.
Because the cluster fault plane
(:class:`repro.gpusim.faults.ClusterFaultPlan`) is a pure function of
``(seed, entity, step)``, no RNG state needs saving — replaying steps
``k+1..N`` from a step-``k`` checkpoint injects the identical fault
schedule an uninterrupted run saw, which is what makes the resumed final
grid *bit-identical* (property-tested and gated in ``tools/check.py``).

File format (one file, version 1):

* line 1 — a JSON header binding the checkpoint to the campaign's
  session key (like :class:`repro.tuning.robust.TrialJournal` headers),
  recording step/shape/dtype/fleet/accounting and the payload's SHA-256;
* the rest — the grid's raw C-order bytes.

Write discipline: the whole file is staged in a sibling tempfile,
flushed, fsynced, then atomically published with ``os.replace`` — a
process killed mid-checkpoint leaves either the previous complete
checkpoint or the new one, never a torn hybrid.  Every reader failure
mode (missing file, foreign session, short payload, digest mismatch)
raises :class:`repro.errors.CheckpointError`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import CheckpointError

#: Bump on incompatible header/payload layout changes.
CHECKPOINT_VERSION = 1

_TOOL = "repro.cluster.checkpoint"


def grid_digest(grid: np.ndarray) -> str:
    """SHA-256 of the grid's raw C-order bytes — the bit-identity witness."""
    return hashlib.sha256(np.ascontiguousarray(grid).tobytes()).hexdigest()


@dataclass(frozen=True)
class CheckpointState:
    """One resumable campaign snapshot (see the module doc).

    ``step`` counts *completed* steps: a resume runs steps
    ``step..steps-1``.  ``alive`` / ``quarantined`` are original fleet
    indices — the identities the fault schedule is keyed by — and
    ``exchange_retries`` / ``backoff_s`` carry the recovery accounting
    forward so a resumed campaign's totals match the uninterrupted run.
    """

    session: str
    step: int
    grid: np.ndarray
    alive: tuple[int, ...]
    quarantined: tuple[int, ...]
    exchange_retries: int = 0
    backoff_s: float = 0.0

    def header(self, payload: bytes) -> dict[str, Any]:
        return {
            "checkpoint": _TOOL,
            "version": CHECKPOINT_VERSION,
            "session": self.session,
            "step": self.step,
            "shape": list(self.grid.shape),
            "dtype": self.grid.dtype.str,
            "alive": list(self.alive),
            "quarantined": list(self.quarantined),
            "exchange_retries": self.exchange_retries,
            "backoff_s": self.backoff_s,
            "sha256": hashlib.sha256(payload).hexdigest(),
        }


def save_checkpoint(path: str | Path, state: CheckpointState) -> Path:
    """Atomically persist ``state`` to ``path``; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = np.ascontiguousarray(state.grid).tobytes()
    header = json.dumps(state.header(payload), sort_keys=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(header.encode("utf-8") + b"\n")
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_checkpoint(path: str | Path, session: str) -> CheckpointState:
    """Reload a checkpoint; raises :class:`CheckpointError` when unusable.

    ``session`` must match the header's session key — resuming a
    campaign against a checkpoint from a different device, grid, fleet
    size or fault plan is refused instead of silently replaying foreign
    state.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"{path}: resume checkpoint does not exist")
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"{path}: cannot read checkpoint: {exc}") from exc
    newline = raw.find(b"\n")
    if newline < 0:
        raise CheckpointError(f"{path}: checkpoint has no header line")
    try:
        header = json.loads(raw[:newline].decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CheckpointError(f"{path}:1: unreadable header: {exc}") from exc
    if (
        not isinstance(header, dict)
        or header.get("checkpoint") != _TOOL
        or header.get("version") != CHECKPOINT_VERSION
    ):
        raise CheckpointError(
            f"{path}:1: not a {_TOOL} v{CHECKPOINT_VERSION} checkpoint "
            f"header: {header!r}"
        )
    if header.get("session") != session:
        raise CheckpointError(
            f"{path}: checkpoint belongs to session "
            f"{header.get('session')!r}, not {session!r}"
        )
    payload = raw[newline + 1 :]
    try:
        shape = tuple(int(s) for s in header["shape"])
        dtype = np.dtype(str(header["dtype"]))
        step = int(header["step"])
        alive = tuple(int(g) for g in header["alive"])
        quarantined = tuple(int(g) for g in header["quarantined"])
        retries = int(header.get("exchange_retries", 0))
        backoff_s = float(header.get("backoff_s", 0.0))
        digest = str(header["sha256"])
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"{path}: bad checkpoint header: {exc}") from exc
    expected = dtype.itemsize * int(np.prod(shape))
    if len(payload) != expected:
        raise CheckpointError(
            f"{path}: payload is {len(payload)} byte(s), header promises "
            f"{expected} (torn write?)"
        )
    if hashlib.sha256(payload).hexdigest() != digest:
        raise CheckpointError(
            f"{path}: payload SHA-256 does not match the header "
            f"(corrupted checkpoint)"
        )
    grid = np.frombuffer(payload, dtype=dtype).reshape(shape).copy()
    return CheckpointState(
        session=session,
        step=step,
        grid=grid,
        alive=alive,
        quarantined=quarantined,
        exchange_retries=retries,
        backoff_s=backoff_s,
    )
