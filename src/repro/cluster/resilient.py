"""Self-healing multi-GPU stepping: retry, quarantine, re-decompose, resume.

:class:`ResilientClusterStencil` layers a recovery ladder over
:class:`repro.cluster.multigpu.MultiGpuStencil`'s exact slab numerics.
Faults come from a :class:`repro.gpusim.faults.ClusterFaultPlan` — every
draw a pure function of ``(seed, entity, absolute step)`` — and each
fault family has one deterministic response:

* **corrupt exchange** (validated ghost mismatch / non-finite ghost):
  re-run the exchange with exponential backoff.  Corruption is drawn per
  ``(link, step, attempt)``, so a retry re-draws and the ladder
  terminates; after ``max_exchange_retries`` failures the campaign
  raises :class:`repro.errors.ClusterError`.
* **device dropout**: the GPU is quarantined by its *original* fleet
  index, the surviving slabs are merged and elastically re-decomposed
  over the survivors (``split_grid``/``merge_slabs``), and stepping
  continues.  Numerics stay exact — the property tests sweep a fault
  storm and compare against the single-grid reference.
* **link degradation**: never touches data; the step's exchange time is
  priced on the derated link via :meth:`LinkSpec.degraded`.

Crash safety: with a checkpoint path configured the engine periodically
publishes atomic grid snapshots (:mod:`repro.cluster.checkpoint`) and
``resume=True`` replays the remaining steps.  Because the fault schedule
is keyed on the absolute step, a killed-and-resumed campaign produces a
final grid *bit-identical* to an uninterrupted one — the invariant the
``cluster-smoke`` gate in ``tools/check.py`` enforces end to end.

With ``faults=None`` the engine performs exactly the operations of
:meth:`MultiGpuStencil.run_steps` (split, sweep, exchange, merge; no
validation, no corruption), so the resilient path is byte-identical to
the plain path when nothing is being injected.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.cluster.checkpoint import (
    CheckpointState,
    grid_digest,
    load_checkpoint,
    save_checkpoint,
)
from repro.cluster.decompose import (
    Slab,
    exchange_halos,
    merge_slabs,
    split_grid,
    validate_halos,
)
from repro.cluster.multigpu import (
    MultiGpuStencil,
    ScalingPoint,
    exchange_cost_s,
)
from repro.errors import (
    CheckpointError,
    ClusterError,
    ConfigurationError,
    HaloExchangeError,
)
from repro.gpusim.faults import ClusterFaultPlan
from repro.obs.events import emit
from repro.obs.tracer import set_gauge


@dataclass(frozen=True)
class ClusterPolicy:
    """Recovery-ladder knobs for one campaign.

    ``delay_s`` mirrors :meth:`repro.tuning.robust.RetryPolicy.delay_s`:
    exponential backoff with deterministic string-seeded jitter, so the
    backoff total a campaign accounts is reproducible run to run.  The
    engine never wall-clock sleeps unless ``sleep`` is provided (the
    fleet is simulated; delays are accounted, not suffered).
    """

    max_exchange_retries: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    min_gpus: int = 1
    sleep: Callable[[float], None] | None = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.max_exchange_retries < 0:
            raise ConfigurationError(
                f"max_exchange_retries must be >= 0, got {self.max_exchange_retries}"
            )
        if self.backoff_base_s < 0 or self.backoff_factor < 1.0:
            raise ConfigurationError(
                "backoff must have base >= 0 and factor >= 1, got "
                f"base={self.backoff_base_s}, factor={self.backoff_factor}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )
        if self.min_gpus < 1:
            raise ConfigurationError(
                f"min_gpus must be >= 1, got {self.min_gpus}"
            )

    def delay_s(self, key: str, attempt: int) -> float:
        """Deterministic jittered exponential backoff for ``attempt``."""
        base = self.backoff_base_s * self.backoff_factor**attempt
        if self.jitter == 0.0:
            return base
        rng = random.Random(f"{self.seed}:{key}:{attempt}")
        return base * rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)


@dataclass(frozen=True)
class ClusterRunResult:
    """Outcome of one (possibly resumed) resilient campaign."""

    grid: np.ndarray
    steps: int
    resumed_from: int
    alive: tuple[int, ...]
    quarantined: tuple[int, ...]
    exchange_retries: int
    backoff_s: float
    checkpoints_written: int
    exchange_time_s: float
    points: tuple[ScalingPoint, ...]

    def digest(self) -> str:
        """SHA-256 of the final grid — the bit-identity witness."""
        return grid_digest(self.grid)

    def summary(self) -> str:
        fleet = len(self.alive) + len(self.quarantined)
        line = (
            f"{self.steps} step(s) on {len(self.alive)}/{fleet} GPU(s), "
            f"{self.exchange_retries} exchange retr"
            f"{'y' if self.exchange_retries == 1 else 'ies'}, "
            f"{len(self.quarantined)} quarantined"
        )
        if self.resumed_from:
            line += f", resumed at step {self.resumed_from}"
        if self.checkpoints_written:
            line += f", {self.checkpoints_written} checkpoint(s)"
        return line


class ResilientClusterStencil:
    """Fault-tolerant stepping campaigns over a :class:`MultiGpuStencil`."""

    def __init__(
        self, base: MultiGpuStencil, *, policy: ClusterPolicy | None = None
    ) -> None:
        self.base = base
        self.policy = policy if policy is not None else ClusterPolicy()

    def session_key(
        self,
        grid_shape: tuple[int, ...],
        gpus: int,
        faults: ClusterFaultPlan | None,
    ) -> str:
        """Key binding checkpoints to one campaign's identity.

        Device, grid shape, initial fleet size and fault plan — but *not*
        the step count, so ``--steps k`` then ``--resume --steps N``
        share the checkpoint (the kill/resume protocol).
        """
        shape = "x".join(str(s) for s in grid_shape)
        plan = faults.describe() if faults is not None else "clean"
        return f"cluster:{self.base.device.name}:{shape}:gpus={gpus}:{plan}"

    # ------------------------------------------------------------------
    # Campaign
    # ------------------------------------------------------------------
    def run_campaign(
        self,
        grid: np.ndarray,
        gpus: int,
        steps: int,
        *,
        faults: ClusterFaultPlan | None = None,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 0,
        resume: bool = False,
        session_key: str | None = None,
        cost_points: bool = True,
    ) -> ClusterRunResult:
        """Run ``steps`` sweeps, surviving whatever ``faults`` injects.

        ``checkpoint_every > 0`` (with a path) snapshots the merged grid
        after every that-many completed steps and after the final step;
        ``resume=True`` reloads the path and replays only the remaining
        steps.  ``cost_points=False`` skips the scaling-point pricing
        (pure-numerics runs, e.g. property tests).  Raises
        :class:`ClusterError` when the fleet drops below
        ``policy.min_gpus`` or an exchange stays corrupt through every
        retry, and :class:`CheckpointError` for unusable checkpoints.
        """
        if steps < 0:
            raise ConfigurationError(f"steps must be >= 0, got {steps}")
        if checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if resume and checkpoint_path is None:
            raise ConfigurationError("resume=True requires a checkpoint path")

        plan = self.base.plan_builder()
        radius = plan.halo_radius()
        current = np.asarray(grid, dtype=plan.dtype)
        session = (
            session_key
            if session_key is not None
            else self.session_key(current.shape, gpus, faults)
        )

        alive = tuple(range(gpus))
        quarantined: tuple[int, ...] = ()
        retries = 0
        backoff_s = 0.0
        start_step = 0
        checkpoints_written = 0
        if resume:
            assert checkpoint_path is not None
            state = load_checkpoint(checkpoint_path, session)
            if state.grid.shape != current.shape:
                raise CheckpointError(
                    f"checkpoint grid shape {state.grid.shape} does not "
                    f"match the campaign grid {current.shape}"
                )
            if state.step > steps:
                raise CheckpointError(
                    f"checkpoint is at step {state.step}, beyond the "
                    f"requested {steps} step(s)"
                )
            current = state.grid.astype(plan.dtype, copy=False)
            alive = state.alive
            quarantined = state.quarantined
            retries = state.exchange_retries
            backoff_s = state.backoff_s
            start_step = state.step
            emit("cluster.checkpoint.restored", step=start_step)

        emit(
            "cluster.run.start",
            session=session,
            gpus=len(alive),
            steps=steps,
        )
        set_gauge("cluster.gpus_alive", float(len(alive)))
        set_gauge("cluster.exchange_retries", float(retries))

        shape_xyz = current.shape[::-1]
        points: list[ScalingPoint] = []
        if cost_points:
            points.append(self.base.step_cost(shape_xyz, len(alive)))

        slabs = split_grid(current, len(alive), radius)
        exchange_time_s = 0.0
        lz, ly, lx = current.shape
        bytes_per_interface = 2.0 * radius * lx * ly * plan.elem_bytes

        for step in range(start_step, steps):
            # 1. Dropout: quarantine dead GPUs, re-decompose survivors.
            if faults is not None and faults.dropout_rate > 0.0:
                dead = tuple(
                    g for g in alive if faults.gpu_dropout(g, step)
                )
                if dead:
                    for g in dead:
                        emit("cluster.gpu.quarantined", step=step, gpu=g)
                    survivors = tuple(g for g in alive if g not in dead)
                    quarantined = quarantined + dead
                    alive = survivors
                    set_gauge("cluster.gpus_alive", float(len(alive)))
                    if len(alive) < self.policy.min_gpus:
                        raise ClusterError(
                            f"step {step}: only {len(alive)} GPU(s) "
                            f"survive (minimum {self.policy.min_gpus}); "
                            f"quarantined: {sorted(quarantined)}"
                        )
                    current = merge_slabs(slabs)
                    slabs = split_grid(current, len(alive), radius)
                    emit("cluster.redecompose", step=step, gpus=len(alive))
                    if cost_points:
                        points.append(
                            self.base.step_cost(shape_xyz, len(alive))
                        )

            # 2. Sweep every surviving slab.
            for slab in slabs:
                slab.data = plan.execute(slab.data)

            # 3. Exchange, with the corrupt-transfer retry ladder.
            attempts = self._exchange(slabs, faults, step)
            if attempts > 1:
                retries += attempts - 1
                for a in range(1, attempts):
                    backoff_s += self.policy.delay_s(f"step{step}", a - 1)
                set_gauge("cluster.exchange_retries", float(retries))
            exchange_time_s += attempts * self._exchange_step_cost(
                faults, step, len(slabs) - 1, bytes_per_interface
            )

            # 4. Periodic crash-safe checkpoint.
            done = step + 1
            if (
                checkpoint_path is not None
                and checkpoint_every > 0
                and (done % checkpoint_every == 0 or done == steps)
            ):
                current = merge_slabs(slabs)
                save_checkpoint(
                    checkpoint_path,
                    CheckpointState(
                        session=session,
                        step=done,
                        grid=current,
                        alive=alive,
                        quarantined=quarantined,
                        exchange_retries=retries,
                        backoff_s=backoff_s,
                    ),
                )
                checkpoints_written += 1
                emit("cluster.checkpoint.written", step=done)

        final = merge_slabs(slabs) if steps > start_step else current
        emit("cluster.run.finished", steps=steps, gpus_alive=len(alive))
        return ClusterRunResult(
            grid=final,
            steps=steps,
            resumed_from=start_step,
            alive=alive,
            quarantined=quarantined,
            exchange_retries=retries,
            backoff_s=backoff_s,
            checkpoints_written=checkpoints_written,
            exchange_time_s=exchange_time_s,
            points=tuple(points),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _exchange(
        self,
        slabs: list[Slab],
        faults: ClusterFaultPlan | None,
        step: int,
    ) -> int:
        """Exchange halos until validation passes; returns attempts used.

        With no fault plan this is exactly one plain
        :func:`exchange_halos` call — no corruption pass, no validation —
        keeping the clean path byte-identical to
        :meth:`MultiGpuStencil.run_steps`.
        """
        if faults is None:
            exchange_halos(slabs)
            return 1
        for attempt in range(self.policy.max_exchange_retries + 1):
            exchange_halos(slabs)
            if faults.link_corrupt_rate > 0.0:
                for link, hi in enumerate(slabs[1:]):
                    if hi.ghost_lo:
                        faults.corrupt_ghosts(
                            hi.data[: hi.ghost_lo], link, step, attempt
                        )
            try:
                validate_halos(slabs)
            except HaloExchangeError as exc:
                emit(
                    "cluster.exchange.retry",
                    step=step,
                    attempt=attempt,
                    error=str(exc),
                )
                if attempt == self.policy.max_exchange_retries:
                    raise ClusterError(
                        f"step {step}: halo exchange still corrupt after "
                        f"{attempt + 1} attempt(s): {exc}"
                    ) from exc
                delay = self.policy.delay_s(f"step{step}", attempt)
                if self.policy.sleep is not None:
                    self.policy.sleep(delay)
                continue
            return attempt + 1
        raise AssertionError("unreachable")  # pragma: no cover

    def _exchange_step_cost(
        self,
        faults: ClusterFaultPlan | None,
        step: int,
        interfaces: int,
        bytes_per_interface: float,
    ) -> float:
        """Price one exchange pass, on the step's worst degraded link."""
        if interfaces <= 0:
            return 0.0
        link = self.base.link
        if faults is not None and faults.link_degrade_rate > 0.0:
            factor = max(
                faults.link_degrade_factor(i, step) for i in range(interfaces)
            )
            link = link.degraded(factor)
        return exchange_cost_s(
            link,
            interfaces=interfaces,
            bytes_per_interface=bytes_per_interface,
        )
