"""Multi-GPU domain decomposition (extension).

The paper's introduction motivates stencil optimization with "scal[ing]
the simulation to larger problem sizes"; the era's standard recipe (see
e.g. its refs [6], [7]) is slab decomposition along z with per-step halo
exchange over PCIe.  This package provides the pieces:

* :mod:`repro.cluster.decompose` — numerically exact slab split / halo
  exchange / merge, so a multi-GPU sweep provably equals the single-grid
  sweep (property-tested);
* :mod:`repro.cluster.multigpu` — the cost model: per-slab kernel time
  from the GPU simulator plus PCIe transfer time per interface, giving
  strong/weak scaling curves with the classic exchange-bound saturation;
* :mod:`repro.cluster.resilient` — the self-healing stepping engine:
  exchange-retry with backoff, device quarantine with elastic
  re-decomposition, and crash-safe checkpoint/resume
  (:mod:`repro.cluster.checkpoint`), all driven by the deterministic
  cluster fault plane (:class:`repro.gpusim.faults.ClusterFaultPlan`).
"""

from repro.cluster.checkpoint import (
    CheckpointState,
    grid_digest,
    load_checkpoint,
    save_checkpoint,
)
from repro.cluster.decompose import (
    Slab,
    exchange_halos,
    merge_slabs,
    slab_extents,
    split_grid,
    validate_halos,
)
from repro.cluster.multigpu import (
    LinkSpec,
    MultiGpuStencil,
    PCIE_GEN2_X16,
    PCIE_P2P,
    ScalingPoint,
    exchange_cost_s,
)
from repro.cluster.resilient import (
    ClusterPolicy,
    ClusterRunResult,
    ResilientClusterStencil,
)

__all__ = [
    "Slab",
    "slab_extents",
    "split_grid",
    "exchange_halos",
    "validate_halos",
    "merge_slabs",
    "LinkSpec",
    "MultiGpuStencil",
    "ScalingPoint",
    "exchange_cost_s",
    "PCIE_GEN2_X16",
    "PCIE_P2P",
    "ClusterPolicy",
    "ClusterRunResult",
    "ResilientClusterStencil",
    "CheckpointState",
    "grid_digest",
    "save_checkpoint",
    "load_checkpoint",
]
