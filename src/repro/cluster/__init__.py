"""Multi-GPU domain decomposition (extension).

The paper's introduction motivates stencil optimization with "scal[ing]
the simulation to larger problem sizes"; the era's standard recipe (see
e.g. its refs [6], [7]) is slab decomposition along z with per-step halo
exchange over PCIe.  This package provides both halves:

* :mod:`repro.cluster.decompose` — numerically exact slab split / halo
  exchange / merge, so a multi-GPU sweep provably equals the single-grid
  sweep (property-tested);
* :mod:`repro.cluster.multigpu` — the cost model: per-slab kernel time
  from the GPU simulator plus PCIe transfer time per interface, giving
  strong/weak scaling curves with the classic exchange-bound saturation.
"""

from repro.cluster.decompose import (
    Slab,
    exchange_halos,
    merge_slabs,
    split_grid,
    validate_halos,
)
from repro.cluster.multigpu import LinkSpec, MultiGpuStencil, PCIE_GEN2_X16, PCIE_P2P

__all__ = [
    "Slab",
    "split_grid",
    "exchange_halos",
    "validate_halos",
    "merge_slabs",
    "LinkSpec",
    "MultiGpuStencil",
    "PCIE_GEN2_X16",
    "PCIE_P2P",
]
