"""Global-memory coalescing model.

The unit of modeling is the *warp load/store instruction*: one instruction
issued by a warp that accesses a contiguous span of bytes with some number
of active lanes.  The hardware services such an instruction by fetching
every distinct transaction line (128 bytes on Fermi/Kepler) the span
touches.  Everything the paper measures about memory efficiency reduces to
two counters derivable from this model:

* ``requested_bytes`` — bytes the program asked for (active lanes x element
  size x vector width);
* ``transferred_bytes`` — transaction count x line size.

Their ratio is exactly the "global memory load efficiency" metric of the
paper's Fig 9 (the CUDA profiler's ``gld_efficiency``).

Kernels describe their per-plane traffic as a list of :class:`WarpAccess`
records via region helpers (:func:`row_region_accesses`,
:func:`column_strip_accesses`); the timing model aggregates them with
:class:`MemoryStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.arch import WARP_SIZE
from repro.utils.maths import ceil_div


#: Classification of an access, used for the L2 halo-reuse effect and for
#: per-region efficiency reporting.
KIND_INTERIOR = "interior"
KIND_HALO = "halo"
KIND_WRITE = "write"
KIND_SPILL = "spill"


@dataclass(frozen=True)
class WarpAccess:
    """One warp-level global-memory instruction (possibly repeated).

    Attributes
    ----------
    start_byte:
        Byte offset (within the grid allocation) of the first byte the
        instruction touches.  Only its alignment phase relative to the
        transaction line matters.
    span_bytes:
        Contiguous extent accessed by the active lanes.
    useful_bytes:
        Bytes actually requested by live lanes (<= span_bytes; smaller when
        some lanes are predicated off).
    count:
        Number of identical instructions with the same line phase (e.g. one
        per row of a region whose pitch is line-aligned).
    kind:
        One of the ``KIND_*`` constants.
    """

    start_byte: int
    span_bytes: int
    useful_bytes: int
    count: int = 1
    kind: str = KIND_INTERIOR

    def __post_init__(self) -> None:
        if self.span_bytes <= 0:
            raise ValueError("span_bytes must be positive")
        if not 0 < self.useful_bytes <= self.span_bytes:
            raise ValueError("useful_bytes must be in (0, span_bytes]")
        if self.count <= 0:
            raise ValueError("count must be positive")

    def transactions_each(self, line_bytes: int) -> int:
        """Distinct transaction lines touched by one instance."""
        return line_span(self.start_byte, self.span_bytes, line_bytes)


def line_span(start_byte: int, span_bytes: int, line_bytes: int = 128) -> int:
    """Number of ``line_bytes``-sized lines covering [start, start+span).

    This is the transaction count for a contiguous warp access: the first
    and last byte may fall in different lines, and a misaligned start costs
    an extra transaction exactly when it crosses a line boundary.
    """
    if span_bytes <= 0:
        raise ValueError("span_bytes must be positive")
    if line_bytes <= 0:
        raise ValueError("line_bytes must be positive")
    first = start_byte // line_bytes
    last = (start_byte + span_bytes - 1) // line_bytes
    return int(last - first + 1)


def best_vector_width(
    start_byte: int, width_elems: int, elem_bytes: int, max_vec: int = 4
) -> int:
    """Largest usable vector width (elements/lane) for a contiguous load.

    Section III-C-2: two-element vectors need 8-byte alignment, four-element
    vectors 16-byte alignment, and the width must divide evenly so no lane
    straddles the region edge.  Doubles cap at ``double2`` (16-byte units).
    """
    vec = max_vec
    if elem_bytes == 8:
        vec = min(vec, 2)
    while vec > 1:
        if width_elems % vec == 0 and start_byte % (vec * elem_bytes) == 0:
            return vec
        vec //= 2
    return 1


@dataclass(frozen=True)
class RegionRecord:
    """Geometry of one accounted load/store region, kept for introspection.

    The region builders in :mod:`repro.kernels.loads` attach one record per
    region alongside the aggregate counters, so the static analyzer
    (:mod:`repro.analysis.memaccess`) can lint a workload's access patterns
    — misaligned rows, uncoalesced strips — without re-deriving any kernel
    variant's loading logic.  ``avg_row_transactions`` is the phase-averaged
    per-row transaction count the aggregate was charged with.
    """

    kind: str
    x_start_rel: int
    width_elems: int
    rows: int
    tile_stride: int
    elem_bytes: int
    vec_width: int
    avg_row_transactions: float
    camped: bool = False


@dataclass
class MemoryStats:
    """Aggregated global-memory behaviour of one block for one z-plane.

    ``instructions`` counts warp-level load/store issues; the split of
    requested/transferred bytes by interior/halo feeds the L2 reuse model
    and the Fig 9 efficiency metric (loads only, as in the profiler).
    """

    line_bytes: int = 128
    load_instructions: int = 0
    store_instructions: int = 0
    load_transactions: int = 0
    store_transactions: int = 0
    requested_load_bytes: int = 0
    requested_store_bytes: int = 0
    halo_transferred_bytes: int = 0
    interior_transferred_bytes: int = 0
    store_transferred_bytes: int = 0
    spill_transferred_bytes: int = 0
    #: Number of distinct load "phases" — separately issued region groups
    #: that serialize behind the per-plane barrier (interior vs halo sides).
    #: Drives the divergence/latency-exposure penalty of split loading.
    load_phases: int = 0
    #: Bytes moved by transactions that walk a column at the grid pitch —
    #: a power-of-two stride, so successive lines map to the *same* DRAM
    #: partition and serialize there (Fermi-era "partition camping").
    #: The timing model charges these an extra service-cost multiplier.
    camped_bytes: float = 0.0
    #: Per-region geometry records (appended by the builders in
    #: :mod:`repro.kernels.loads`) for the static analyzer; purely
    #: informational — no counter above is derived from them.
    regions: list[RegionRecord] = field(default_factory=list)

    def add(self, access: WarpAccess, instructions: int | None = None) -> None:
        """Accumulate one :class:`WarpAccess`.

        ``instructions`` overrides the default of one issue per instance;
        region helpers pass the warp-decomposed count (e.g. a 256-element
        row needs ceil(256 / (32*vec)) issues even though it is a single
        logical access).
        """
        issues = access.count if instructions is None else instructions
        tx = access.transactions_each(self.line_bytes) * access.count
        moved = tx * self.line_bytes
        if access.kind == KIND_WRITE:
            self.store_instructions += issues
            self.store_transactions += tx
            self.requested_store_bytes += access.useful_bytes * access.count
            self.store_transferred_bytes += moved
        else:
            self.load_instructions += issues
            self.load_transactions += tx
            self.requested_load_bytes += access.useful_bytes * access.count
            if access.kind == KIND_HALO:
                self.halo_transferred_bytes += moved
            elif access.kind == KIND_SPILL:
                self.spill_transferred_bytes += moved
            else:
                self.interior_transferred_bytes += moved

    def add_raw(
        self,
        *,
        kind: str,
        instructions: float,
        transactions: float,
        requested_bytes: float,
        camped: bool = False,
    ) -> None:
        """Accumulate pre-computed counts directly.

        Region builders that average transaction counts over tile alignment
        phases produce fractional per-block values; this entry point accepts
        them.  ``transferred = transactions * line_bytes`` as usual.
        """
        if instructions < 0 or transactions < 0 or requested_bytes < 0:
            raise ValueError("raw memory counts must be non-negative")
        moved = transactions * self.line_bytes
        if camped:
            self.camped_bytes += moved
        if kind == KIND_WRITE:
            self.store_instructions += instructions
            self.store_transactions += transactions
            self.requested_store_bytes += requested_bytes
            self.store_transferred_bytes += moved
        else:
            self.load_instructions += instructions
            self.load_transactions += transactions
            self.requested_load_bytes += requested_bytes
            if kind == KIND_HALO:
                self.halo_transferred_bytes += moved
            elif kind == KIND_SPILL:
                self.spill_transferred_bytes += moved
            else:
                self.interior_transferred_bytes += moved

    @property
    def load_transferred_bytes(self) -> int:
        """All bytes moved for loads (interior + halo + spill)."""
        return (
            self.interior_transferred_bytes
            + self.halo_transferred_bytes
            + self.spill_transferred_bytes
        )

    @property
    def total_transferred_bytes(self) -> int:
        """All bytes moved in both directions."""
        return self.load_transferred_bytes + self.store_transferred_bytes

    @property
    def load_efficiency(self) -> float:
        """Requested / transferred for loads — the paper's Fig 9 metric."""
        if self.load_transferred_bytes == 0:
            return 1.0
        return self.requested_load_bytes / self.load_transferred_bytes

    def merge(self, other: "MemoryStats") -> None:
        """Accumulate ``other`` (same line size) into this object."""
        if other.line_bytes != self.line_bytes:
            raise ValueError("cannot merge MemoryStats with different line sizes")
        self.load_instructions += other.load_instructions
        self.store_instructions += other.store_instructions
        self.load_transactions += other.load_transactions
        self.store_transactions += other.store_transactions
        self.requested_load_bytes += other.requested_load_bytes
        self.requested_store_bytes += other.requested_store_bytes
        self.halo_transferred_bytes += other.halo_transferred_bytes
        self.interior_transferred_bytes += other.interior_transferred_bytes
        self.store_transferred_bytes += other.store_transferred_bytes
        self.spill_transferred_bytes += other.spill_transferred_bytes
        self.load_phases += other.load_phases
        self.camped_bytes += other.camped_bytes
        self.regions.extend(other.regions)


def row_region_accesses(
    *,
    start_byte: int,
    width_elems: int,
    rows: int,
    elem_bytes: int,
    vec_width: int = 1,
    kind: str = KIND_INTERIOR,
    stats: MemoryStats,
) -> None:
    """Account a rectangular region loaded/stored as contiguous row spans.

    The region's rows are assumed to share one line phase (true when the
    grid pitch is a multiple of the transaction line, which the layout
    guarantees).  Each row of ``width_elems`` elements decomposes into
    ``ceil(width / (WARP_SIZE * vec))`` warp instructions — the warp-based
    assignment of section III-C-2 where loads are partitioned to warps in
    aligned chunks.
    """
    if width_elems <= 0 or rows <= 0:
        raise ValueError("region must be non-empty")
    issues_per_row = ceil_div(width_elems, WARP_SIZE * vec_width)
    access = WarpAccess(
        start_byte=start_byte,
        span_bytes=width_elems * elem_bytes,
        useful_bytes=width_elems * elem_bytes,
        count=rows,
        kind=kind,
    )
    stats.add(access, instructions=issues_per_row * rows)


def column_strip_accesses(
    *,
    start_byte: int,
    width_elems: int,
    rows: int,
    elem_bytes: int,
    kind: str = KIND_HALO,
    stats: MemoryStats,
) -> None:
    """Account a narrow column strip loaded row-by-row by perimeter lanes.

    This is the *nvstencil* left/right halo pattern of Fig 4: for each row,
    a handful of lanes (``width_elems`` of them, width = stencil radius)
    issue one load whose span is tiny compared to the 128-byte line it
    drags in — the uncoalesced access the paper blames for the baseline's
    low load efficiency.
    """
    if width_elems <= 0 or rows <= 0:
        raise ValueError("strip must be non-empty")
    access = WarpAccess(
        start_byte=start_byte,
        span_bytes=width_elems * elem_bytes,
        useful_bytes=width_elems * elem_bytes,
        count=rows,
        kind=kind,
    )
    # One predicated warp instruction per row regardless of lane count.
    stats.add(access, instructions=rows)
