"""Batched, vectorized evaluation engine — whole candidate sets at once.

The scalar pipeline (:func:`repro.gpusim.timing.time_kernel` plus
:func:`repro.obs.counters.derive_counters`) prices one configuration per
call; an exhaustive sweep therefore pays the full Python pipeline N
times.  This module computes the identical quantities as NumPy array
operations over *whole candidate sets*: occupancy, block-class analysis,
coalescing/transaction totals, shared-memory bank-conflict replay, the
wave-scheduled cycle accumulation and the derived hardware-counter set.

Two contracts make it safe to substitute for the scalar path anywhere:

* **Bit identity.**  Every elementwise operation mirrors the scalar
  code in the identical order on IEEE-754 doubles, so each derived
  float is *bit-identical* to the scalar result — not merely close.
  The executable proof is ``python -m repro.gpusim.batch --baseline
  BENCH_profile.json``, which resimulates every trajectory record
  through both paths and compares every report field exactly (the
  ``batch-identity`` step of ``tools/check.py``).  The scalar loop in
  :func:`derive_counters` accumulates wave cycle shares by repeated
  addition, which is *not* associative in floating point — the batch
  engine replays the same additions with a masked loop rather than
  collapsing them into a multiplication.
* **Block-class memoization.**  The timing model only sees the numeric
  fingerprint of a (block workload, grid workload) pair — its
  :class:`BlockClass`.  Distinct configurations that share a class (and
  repeated sweeps over the same class) are priced once; results are
  cached on the engine.

Unlaunchable configurations do not raise: the vector pipeline carries a
launchability mask and reports per-class failure strings identical to
the :class:`repro.errors.ResourceLimitError` messages the scalar
occupancy calculator raises, so callers can reproduce the scalar
control flow without exceptions.

Consumers: :class:`repro.tuning.vectorized.VectorTrialEvaluator` (the
``repro tune`` backend), :func:`repro.obs.regress.diff_baseline` and
:func:`repro.analysis.estimate.reconcile_profile` (batched
resimulation), and ``benchmarks/test_batch_speedup.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.gpusim.arch import WARP_SIZE
from repro.gpusim.device import DeviceSpec, get_device
from repro.gpusim.occupancy import OccupancyResult
from repro.gpusim.report import SimReport
from repro.gpusim.smem import dp_conflict_factor
from repro.gpusim.timing import PlaneCost, TimingParams, TimingResult, params_for
from repro.gpusim.workload import BlockWorkload, GridWorkload
from repro.obs.counters import CounterSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.kernels.base import KernelPlan

#: Limiter names in the exact insertion order of the scalar limits dict;
#: ``np.argmin`` picks the first minimum, matching ``min(dict.items())``.
_LIMITERS = ("registers", "smem", "warps", "blocks")

_F = np.float64
_I = np.int64


@dataclass(frozen=True)
class BlockClass:
    """Numeric fingerprint of a (block workload, grid workload) pair.

    Exactly the quantities the timing model and the counter derivations
    read — two configurations with equal fingerprints are
    indistinguishable to the simulator, which is what makes per-class
    memoization exact rather than approximate.  ``load_transactions`` /
    ``store_transactions`` keep their original numeric type (int for
    enumerated traffic, float for phase-averaged raw counts) because the
    scalar counter set preserves that type in ``gld_transactions`` /
    ``gst_transactions``.
    """

    threads_per_block: int
    regs_per_thread: int
    smem_bytes: int
    elem_bytes: int
    points_per_plane: int
    flops_per_point: float
    arith_instructions: float
    extra_instructions: int
    ilp: float
    prologue_planes: int
    syncs_per_plane: int
    # -- global-memory traffic (per block-plane) --
    load_instructions: float
    store_instructions: float
    load_transactions: int | float
    store_transactions: int | float
    requested_load_bytes: float
    requested_store_bytes: float
    interior_transferred_bytes: float
    halo_transferred_bytes: float
    store_transferred_bytes: float
    spill_transferred_bytes: float
    load_phases: int
    camped_bytes: float
    # -- shared-memory profile --
    smem_read_instructions: int
    smem_write_instructions: int
    smem_conflict_factor: float
    # -- grid --
    blocks: int
    planes: int
    total_points: int

    @classmethod
    def of(cls, workload: BlockWorkload, grid: GridWorkload) -> "BlockClass":
        mem = workload.memory
        prof = workload.smem_profile
        return cls(
            threads_per_block=workload.threads_per_block,
            regs_per_thread=workload.regs_per_thread,
            smem_bytes=workload.smem_bytes,
            elem_bytes=workload.elem_bytes,
            points_per_plane=workload.points_per_plane,
            flops_per_point=workload.flops_per_point,
            arith_instructions=workload.arith_instructions,
            extra_instructions=workload.extra_instructions,
            ilp=workload.ilp,
            prologue_planes=workload.prologue_planes,
            syncs_per_plane=workload.syncs_per_plane,
            load_instructions=mem.load_instructions,
            store_instructions=mem.store_instructions,
            load_transactions=mem.load_transactions,
            store_transactions=mem.store_transactions,
            requested_load_bytes=mem.requested_load_bytes,
            requested_store_bytes=mem.requested_store_bytes,
            interior_transferred_bytes=mem.interior_transferred_bytes,
            halo_transferred_bytes=mem.halo_transferred_bytes,
            store_transferred_bytes=mem.store_transferred_bytes,
            spill_transferred_bytes=mem.spill_transferred_bytes,
            load_phases=mem.load_phases,
            camped_bytes=mem.camped_bytes,
            smem_read_instructions=prof.read_instructions,
            smem_write_instructions=prof.write_instructions,
            smem_conflict_factor=prof.conflict_factor,
            blocks=grid.blocks,
            planes=grid.planes,
            total_points=grid.total_points,
        )


@dataclass(frozen=True)
class ClassScore:
    """What the tuners consume per class: headline rate + trial info.

    ``launch_error`` is ``None`` for a launchable class; otherwise the
    exact message the scalar occupancy calculator would raise.
    """

    launch_error: str | None
    mpoints_per_s: float = 0.0
    load_efficiency: float = 0.0
    occupancy: float = 0.0
    limiter: str = ""


@dataclass(frozen=True)
class ClassOutcome:
    """The full per-class scalar-pipeline product (report assembly kit)."""

    launch_error: str | None
    timing: TimingResult | None = None
    counters: CounterSet | None = None
    time_s: float = 0.0
    mpoints_per_s: float = 0.0
    gflops: float = 0.0
    load_efficiency: float = 0.0
    bandwidth_gbs: float = 0.0


def _cdiv(a: np.ndarray, b: Any) -> np.ndarray:
    """Vectorized ``ceil_div`` for non-negative int64 operands."""
    return -((-a) // b)


class BatchEngine:
    """Vectorized scalar-identical evaluation of block classes on one device.

    Results are memoized per :class:`BlockClass`; repeated classes across
    (and within) calls are free.  ``params`` overrides the generation's
    timing constants exactly like :class:`repro.gpusim.executor.DeviceExecutor`.
    """

    def __init__(
        self, device: DeviceSpec | str, params: TimingParams | None = None
    ) -> None:
        self.device = get_device(device) if isinstance(device, str) else device
        self.params = params or params_for(self.device)
        self._scores: dict[BlockClass, ClassScore] = {}
        self._full: dict[BlockClass, ClassOutcome] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def scores(self, classes: Sequence[BlockClass]) -> list[ClassScore]:
        """Tuner-grade results (rate / efficiency / occupancy / limiter)."""
        missing = self._missing(classes, self._scores)
        if missing:
            cols = self._pipeline(missing)
            for i, cls in enumerate(missing):
                self._scores[cls] = self._light(cols, i)
        return [self._scores[c] for c in classes]

    def outcomes(self, classes: Sequence[BlockClass]) -> list[ClassOutcome]:
        """Full results: timing breakdown plus the derived counter set."""
        missing = self._missing(classes, self._full)
        if missing:
            cols = self._pipeline(missing)
            for i, cls in enumerate(missing):
                full = self._assemble(cols, i, cls)
                self._full[cls] = full
                self._scores.setdefault(cls, _score_of(full))
        return [self._full[c] for c in classes]

    @staticmethod
    def _missing(
        classes: Sequence[BlockClass], cache: dict[BlockClass, Any]
    ) -> list[BlockClass]:
        seen: dict[BlockClass, None] = {}
        for c in classes:
            if c not in cache:
                seen.setdefault(c)
        return list(seen)

    # ------------------------------------------------------------------
    # the vectorized pipeline
    # ------------------------------------------------------------------
    def _pipeline(self, classes: list[BlockClass]) -> dict[str, Any]:
        """Mirror of occupancy → timing → counters, op for op, over arrays.

        Every expression below is annotated against its scalar original;
        operand order and association are preserved so each float64 lane
        is bit-identical to the scalar computation for that class.
        """
        dev = self.device
        p = self.params
        n = len(classes)

        def icol(attr: str) -> np.ndarray:
            return np.array([getattr(c, attr) for c in classes], dtype=_I)

        def fcol(attr: str) -> np.ndarray:
            return np.array([getattr(c, attr) for c in classes], dtype=_F)

        threads = icol("threads_per_block")
        regs = icol("regs_per_thread")
        smem_bytes = icol("smem_bytes")
        elem = icol("elem_bytes")
        points = icol("points_per_plane")
        flops = fcol("flops_per_point")
        arith_pp = fcol("arith_instructions")
        extra = fcol("extra_instructions")
        ilp = fcol("ilp")
        prologue = icol("prologue_planes")
        syncs = icol("syncs_per_plane")
        load_instr = fcol("load_instructions")
        store_instr = fcol("store_instructions")
        req_load = fcol("requested_load_bytes")
        req_store = fcol("requested_store_bytes")
        interior_b = fcol("interior_transferred_bytes")
        halo_b = fcol("halo_transferred_bytes")
        store_b = fcol("store_transferred_bytes")
        spill_b = fcol("spill_transferred_bytes")
        phases = icol("load_phases")
        camped = fcol("camped_bytes")
        smem_read = icol("smem_read_instructions")
        smem_write = icol("smem_write_instructions")
        smem_conflict = fcol("smem_conflict_factor")
        blocks = icol("blocks")
        planes = icol("planes")
        total_points = icol("total_points")

        # ---- time_kernel: spill cap (scalar max/min on the raw regs) ----
        cap = dev.rules.max_regs_per_thread
        spilled = np.maximum(0, regs - cap)
        eff_regs = np.minimum(regs, cap)

        # ---- compute_occupancy ------------------------------------------
        rules = dev.rules
        warps_blk = _cdiv(threads, WARP_SIZE)
        # round_up(regs*WARP_SIZE, granularity) — garbage on (masked)
        # negative-footprint rows is fine, the error mask wins below.
        regs_warp = _cdiv(eff_regs * WARP_SIZE, rules.register_alloc_granularity) * (
            rules.register_alloc_granularity
        )
        regs_blk = regs_warp * warps_blk
        smem_blk = np.where(
            smem_bytes != 0,
            _cdiv(np.abs(smem_bytes), rules.smem_alloc_granularity)
            * rules.smem_alloc_granularity,
            0,
        )

        lim = np.stack([
            np.where(
                regs_blk != 0,
                dev.registers_per_sm // np.where(regs_blk != 0, regs_blk, 1),
                dev.max_blocks_per_sm,
            ),
            np.where(
                smem_blk != 0,
                dev.smem_per_sm // np.where(smem_blk != 0, smem_blk, 1),
                dev.max_blocks_per_sm,
            ),
            dev.max_warps_per_sm // warps_blk,
            np.full(n, dev.max_blocks_per_sm, dtype=_I),
        ])
        lim_idx = np.argmin(lim, axis=0)  # first minimum == dict-order min
        act = np.min(lim, axis=0)

        # Launch-failure classification in the scalar check order.
        reason = np.select(
            [
                threads > dev.max_threads_per_block,
                (eff_regs < 0) | (smem_bytes < 0),
                regs_blk > dev.registers_per_sm,
                smem_blk > dev.smem_per_sm,
                act < 1,
            ],
            [1, 2, 3, 4, 5],
            default=0,
        )
        launch = reason == 0
        live = np.flatnonzero(launch)

        cols: dict[str, Any] = {
            "classes": classes,
            "reason": reason,
            "live_index": {int(g): k for k, g in enumerate(live)},
            "threads": threads,
            "regs_blk": regs_blk,
            "smem_blk": smem_blk,
        }
        if live.size == 0:
            return cols

        # ---- compress to launchable rows --------------------------------
        def lv(a: np.ndarray) -> np.ndarray:
            return a[live]

        threads_l = lv(threads)
        act_l = lv(act)
        warps_l = lv(warps_blk)
        spilled_l = lv(spilled)
        elem_l = lv(elem)
        blocks_l = lv(blocks)
        planes_l = lv(planes)

        active_warps = act_l * warps_l
        occ_frac = active_warps / dev.max_warps_per_sm

        # ---- _effective_plane_bytes -------------------------------------
        reuse = p.l2_halo_reuse if dev.l2_bytes > 0 else 0.0
        halo_eff = lv(halo_b) * (1.0 - reuse)
        spill_bytes = spilled_l * threads_l * p.spill_bytes_per_reg
        camping = lv(camped) * (1.0 - reuse) * (p.partition_camping - 1.0)
        bytes_blk = (
            lv(interior_b) + halo_eff + lv(spill_b) + lv(store_b)
            + spill_bytes + camping
        )

        # ---- issue_slots -------------------------------------------------
        dp_factor = dp_conflict_factor(8, rules)
        conflict = np.where(elem_l == 4, 1.0, dp_factor)
        smem_base = (lv(smem_read) + lv(smem_write)).astype(_F)
        arith_instr = lv(points) * lv(arith_pp)
        slot_gl = lv(load_instr) * (1.0 + p.load_addressing_instructions)
        slot_gs = lv(store_instr)
        # issue_cost() = (reads + writes) * profile factor, then the DP factor.
        slot_smem = ((lv(smem_read) + lv(smem_write)) * lv(smem_conflict)) * conflict
        slot_arith = arith_instr / WARP_SIZE
        slot_spill = np.where(
            spilled_l != 0, spilled_l * threads_l / WARP_SIZE * 2, 0.0
        )
        slot_extra = lv(extra)
        slot_loop = float(p.loop_overhead_instructions)
        slots_total = (
            slot_gl + slot_gs + slot_smem + slot_arith + slot_spill
            + slot_extra + slot_loop
        )

        # ---- _compute_cycles_per_block_plane ----------------------------
        dtype_ratio = np.where(elem_l == 4, 1.0, dev.dp_ratio)
        lanes = dev.cores_per_sm * dtype_ratio
        arith_cycles = arith_instr / (lanes * p.arith_efficiency)
        issue_cycles = slots_total / rules.issue_width
        compute_blk = np.maximum(arith_cycles, issue_cycles)

        # ---- _latency_hiding --------------------------------------------
        li = lv(load_instr)
        has_loads = li != 0
        load_transferred = (lv(interior_b) + lv(halo_b)) + lv(spill_b)
        bytes_per_li = load_transferred / np.where(has_loads, li, 1.0)
        loads_per_warp = li / np.maximum(1, warps_l)
        outstanding = np.minimum(
            p.outstanding_loads_per_warp, np.maximum(1.0, loads_per_warp)
        )
        in_flight = bytes_per_li * outstanding
        pipe_bytes = (
            dev.bandwidth_per_sm_bytes_per_cycle * dev.dram_latency_cycles
        )
        warps_needed = pipe_bytes / np.maximum(1.0, in_flight)
        capacity = active_warps * (1.0 + p.ilp_bonus * (ilp[live] - 1.0))
        # clamp(x, 0, 1) is max(0, min(1, x)) — mirror the min-then-max order.
        hide = np.maximum(0.0, np.minimum(1.0, capacity / np.maximum(1.0, warps_needed)))
        hide = np.where(has_loads, hide, 1.0)

        # ---- _plane_cost (shared sub-terms) -----------------------------
        phases_eff = np.maximum(1, lv(phases))
        raw_exposure = (
            dev.dram_latency_cycles * p.latency_exposure
        ) * (1.0 + p.phase_straggler * (phases_eff - 1))
        sync_cycles = lv(syncs) * (
            p.sync_base_cycles + p.sync_per_warp_cycles * warps_l
        )
        bw = dev.bandwidth_per_sm_bytes_per_cycle

        def plane_cost(res: np.ndarray) -> tuple[np.ndarray, ...]:
            mem_c = res * bytes_blk / bw
            comp_c = res * compute_blk
            block_hide = 1.0 / (1.0 + p.block_overlap * (res - 1))
            exposed = raw_exposure * block_hide * (1.0 - 0.5 * hide)
            overlap = hide * (1.0 - 1.0 / (2 * res - 1))
            total = (
                np.maximum(mem_c, comp_c)
                + (1.0 - overlap) * np.minimum(mem_c, comp_c)
                + exposed
                + sync_cycles
            )
            return total, mem_c, comp_c, exposed, sync_cycles

        # ---- time_kernel wave schedule ----------------------------------
        stages = _cdiv(blocks_l, dev.sm_count * act_l)
        rem = _cdiv(blocks_l - (stages - 1) * act_l * dev.sm_count, dev.sm_count)
        rem = np.maximum(1, np.minimum(rem, act_l))
        planes_blk = planes_l + lv(prologue)

        full = plane_cost(act_l)
        rem_c = plane_cost(rem)
        sched = p.sched_overhead_cycles
        stage_cycles = planes_blk * full[0] + act_l * sched
        total_cycles = (
            np.where(stages > 1, (stages - 1) * stage_cycles, 0.0)
            + (planes_blk * rem_c[0] + rem * sched)
        )

        # ---- executor headline ------------------------------------------
        time_s = total_cycles / dev.clock_hz  # derate == 1.0 on clean launches
        mpoints = lv(total_points) / time_s / 1e6
        gflops = mpoints * 1e6 * lv(flops) / 1e9

        # ---- derive_counters --------------------------------------------
        dram_bytes = bytes_blk * planes_l * blocks_l
        inst_issued = slots_total * planes_blk * blocks_l
        replay = np.where(
            smem_base != 0,
            (slot_smem - smem_base) / np.where(smem_base != 0, smem_base, 1.0),
            0.0,
        )
        # Wave cycle shares: the scalar loop *adds* one full wave at a
        # time — repeated fp addition, not multiplication — so replay the
        # identical additions under a stages mask.
        t_mem = full[1] * planes_blk
        t_comp = full[2] * planes_blk
        t_exp = full[3] * planes_blk
        t_sync = full[4] * planes_blk
        t_sched = act_l * sched
        acc = [np.zeros(live.size) for _ in range(5)]
        n_full = stages - 1
        for w in range(int(n_full.max(initial=0))):
            m = n_full > w
            for a, t in zip(acc, (t_mem, t_comp, t_exp, t_sync, t_sched)):
                a[m] += t[m]
        last = (
            rem_c[1] * planes_blk, rem_c[2] * planes_blk,
            rem_c[3] * planes_blk, rem_c[4] * planes_blk, rem * sched,
        )
        for a, t in zip(acc, last):
            a += t
        comp_total = acc[0] + acc[1] + acc[2] + acc[3] + acc[4]

        eff_loads = load_transferred + lv(camped) * (p.partition_camping - 1.0)
        gld_eff = np.where(
            eff_loads != 0,
            np.minimum(
                1.0, lv(req_load) / np.where(eff_loads != 0, eff_loads, 1.0)
            ),
            1.0,
        )
        gst_eff = np.where(
            lv(store_b) != 0,
            np.minimum(
                1.0, lv(req_store) / np.where(lv(store_b) != 0, lv(store_b), 1.0)
            ),
            1.0,
        )
        cols.update(
            act=act_l, warps_blk=warps_l, active_warps=active_warps,
            occ_frac=occ_frac, lim_idx=lv(lim_idx),
            regs_blk_l=lv(regs_blk), smem_blk_l=lv(smem_blk),
            spilled=spilled_l, stages=stages, rem=rem, planes_blk=planes_blk,
            bytes_blk=bytes_blk, total_cycles=total_cycles,
            full_cost=full, rem_cost=rem_c,
            time_s=time_s, mpoints=mpoints, gflops=gflops,
            dram_bytes=dram_bytes, inst_issued=inst_issued, replay=replay,
            acc=acc, comp_total=comp_total,
            gld_eff=gld_eff, gst_eff=gst_eff,
            l2_reuse=reuse, spill_bytes=spill_bytes,
        )
        return cols

    # ------------------------------------------------------------------
    # per-class assembly
    # ------------------------------------------------------------------
    def _error_for(self, cols: dict[str, Any], i: int) -> str:
        """The exact ResourceLimitError message the scalar path raises."""
        dev = self.device
        reason = int(cols["reason"][i])
        threads = int(cols["threads"][i])
        if reason == 1:
            return (
                f"{threads} threads/block exceeds device limit "
                f"{dev.max_threads_per_block} on {dev.name}"
            )
        if reason == 2:
            return "resource footprints must be non-negative"
        if reason == 3:
            return (
                f"one block needs {int(cols['regs_blk'][i])} registers, SM has "
                f"{dev.registers_per_sm} on {dev.name}"
            )
        if reason == 4:
            return (
                f"one block needs {int(cols['smem_blk'][i])}B shared memory, "
                f"SM has {dev.smem_per_sm}B on {dev.name}"
            )
        return f"no block of {threads} threads fits an SM on {dev.name}"

    def _light(self, cols: dict[str, Any], i: int) -> ClassScore:
        if cols["reason"][i]:
            return ClassScore(launch_error=self._error_for(cols, i))
        k = cols["live_index"][i]
        return ClassScore(
            launch_error=None,
            mpoints_per_s=float(cols["mpoints"][k]),
            load_efficiency=float(cols["gld_eff"][k]),
            occupancy=float(cols["occ_frac"][k]),
            limiter=_LIMITERS[int(cols["lim_idx"][k])],
        )

    def _assemble(
        self, cols: dict[str, Any], i: int, cls: BlockClass
    ) -> ClassOutcome:
        if cols["reason"][i]:
            return ClassOutcome(launch_error=self._error_for(cols, i))
        k = cols["live_index"][i]
        occ = OccupancyResult(
            active_blocks=int(cols["act"][k]),
            warps_per_block=int(cols["warps_blk"][k]),
            active_warps=int(cols["active_warps"][k]),
            occupancy=float(cols["occ_frac"][k]),
            limiter=_LIMITERS[int(cols["lim_idx"][k])],
            regs_per_block=int(cols["regs_blk_l"][k]),
            smem_per_block=int(cols["smem_blk_l"][k]),
        )

        def cost(which: str) -> PlaneCost:
            total, mem_c, comp_c, exposed, sync = cols[which]
            return PlaneCost(
                cycles=float(total[k]),
                mem_cycles=float(mem_c[k]),
                compute_cycles=float(comp_c[k]),
                exposed_cycles=float(exposed[k]),
                sync_cycles=float(sync[k]),
            )

        timing = TimingResult(
            total_cycles=float(cols["total_cycles"][k]),
            occupancy=occ,
            stages=int(cols["stages"][k]),
            blocks=cls.blocks,
            rem_blocks_per_sm=int(cols["rem"][k]),
            plane_cost=cost("full_cost"),
            rem_plane_cost=cost("rem_cost"),
            planes_per_block=int(cols["planes_blk"][k]),
            sched_overhead_cycles=self.params.sched_overhead_cycles,
            spilled_regs=int(cols["spilled"][k]),
            effective_bytes_per_plane=float(cols["bytes_blk"][k]),
        )

        # sweep is an int product in the scalar path; the two transaction
        # counters inherit the class's original numeric type through it.
        sweep = cls.planes * cls.blocks
        acc = cols["acc"]
        comp_total = float(cols["comp_total"][k])
        time_s = float(cols["time_s"][k])
        dram_bytes = float(cols["dram_bytes"][k])
        values: dict[str, float] = {
            "gld_transactions": cls.load_transactions * sweep,
            "gst_transactions": cls.store_transactions * sweep,
            "dram_bytes": dram_bytes,
            "dram_bw_fraction": float(
                cols["dram_bytes"][k] / cols["time_s"][k]
                / (self.device.measured_bandwidth_gbs * 1e9)
            ),
            "gld_efficiency": float(cols["gld_eff"][k]),
            "gst_efficiency": float(cols["gst_eff"][k]),
            "l2_halo_hit_bytes": float(
                cls.halo_transferred_bytes * cols["l2_reuse"]
                * cls.planes * cls.blocks
            ),
            "local_spill_bytes": float(
                cols["spill_bytes"][k] * cls.planes * cls.blocks
            ),
            "shared_replay_rate": float(cols["replay"][k]),
            "inst_issued": float(cols["inst_issued"][k]),
            "ipc": float(
                cols["inst_issued"][k]
                / (cols["total_cycles"][k] * self.device.sm_count)
            ),
            "stall_mem_frac": float(acc[0][k]) / comp_total,
            "stall_compute_frac": float(acc[1][k]) / comp_total,
            "stall_latency_frac": float(acc[2][k]) / comp_total,
            "stall_sync_frac": float(acc[3][k]) / comp_total,
            "stall_sched_frac": float(acc[4][k]) / comp_total,
            "achieved_occupancy": occ.occupancy,
        }
        counters = CounterSet(values=values, occupancy_limiter=occ.limiter)
        return ClassOutcome(
            launch_error=None,
            timing=timing,
            counters=counters,
            time_s=time_s,
            mpoints_per_s=float(cols["mpoints"][k]),
            gflops=float(cols["gflops"][k]),
            load_efficiency=float(cols["gld_eff"][k]),
            bandwidth_gbs=dram_bytes / time_s / 1e9,
        )


def _score_of(full: ClassOutcome) -> ClassScore:
    if full.launch_error is not None:
        return ClassScore(launch_error=full.launch_error)
    assert full.timing is not None
    return ClassScore(
        launch_error=None,
        mpoints_per_s=full.mpoints_per_s,
        load_efficiency=full.load_efficiency,
        occupancy=full.timing.occupancy.occupancy,
        limiter=full.timing.occupancy.limiter,
    )


def batch_reports(
    items: Sequence[tuple["KernelPlan", tuple[int, int, int]]],
    device: DeviceSpec | str,
    params: TimingParams | None = None,
    engine: BatchEngine | None = None,
) -> list[SimReport | Exception]:
    """Simulate many (plan, grid_shape) launches through the batch engine.

    The positional twin of calling :func:`repro.gpusim.executor.simulate`
    per item: each slot holds the bit-identical :class:`SimReport`, or —
    where the scalar path would raise — the unraised exception carrying
    the identical message (a :class:`repro.errors.ResourceLimitError` for
    unlaunchable configurations, or whatever the plan's own workload
    compilation raised), so callers can reproduce the scalar per-item
    control flow: raise, skip or record.
    """
    from repro.errors import ResourceLimitError

    engine = engine or BatchEngine(device, params)
    dev = engine.device
    slots: list[SimReport | Exception | None] = [None] * len(items)
    classes: list[BlockClass] = []
    live: list[tuple[int, "KernelPlan", tuple[int, int, int]]] = []
    for i, (plan, gs) in enumerate(items):
        try:
            workload = plan.block_workload(dev, gs)
            grid = plan.grid_workload(dev, gs)
        except Exception as exc:  # noqa: BLE001 - the scalar path raises these
            slots[i] = exc
            continue
        classes.append(BlockClass.of(workload, grid))
        live.append((i, plan, gs))
    for (i, plan, gs), full in zip(live, engine.outcomes(classes)):
        if full.launch_error is not None:
            slots[i] = ResourceLimitError(full.launch_error)
            continue
        timing = full.timing
        assert timing is not None and full.counters is not None
        slots[i] = (
            SimReport(
                device_name=dev.name,
                kernel_name=plan.name,
                total_cycles=timing.total_cycles,
                time_s=full.time_s,
                mpoints_per_s=full.mpoints_per_s,
                gflops=full.gflops,
                load_efficiency=full.counters["gld_efficiency"],
                bandwidth_gbs=full.bandwidth_gbs,
                occupancy=timing.occupancy,
                stages=timing.stages,
                active_blocks=timing.occupancy.active_blocks,
                blocks=timing.blocks,
                breakdown={
                    "mem_cycles_per_plane": timing.plane_cost.mem_cycles,
                    "compute_cycles_per_plane": timing.plane_cost.compute_cycles,
                    "exposed_cycles_per_plane": timing.plane_cost.exposed_cycles,
                    "sync_cycles_per_plane": timing.plane_cost.sync_cycles,
                    "spilled_regs": float(timing.spilled_regs),
                    "bytes_per_block_plane": timing.effective_bytes_per_plane,
                },
                counters=full.counters,
                meta={
                    "grid_shape": gs,
                    "block": plan.block_label(),
                    "dtype": plan.dtype_name,
                    "variant": plan.variant,
                },
            )
        )
    # Every index was filled: either workload compilation stored its
    # exception, or the class went through the engine above.
    return slots  # type: ignore[return-value]


# ----------------------------------------------------------------------
# the batch-identity gate: ``python -m repro.gpusim.batch --baseline ...``
# ----------------------------------------------------------------------
def _num(v: Any) -> Any:
    """Bit-faithful canonical form: floats by hex, ints as ints."""
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        return v
    if isinstance(v, int):
        return v
    return float(v).hex()


def report_payload(report: SimReport) -> dict[str, Any]:
    """Every compared quantity of one report, floats in hex (bit-exact)."""
    occ = report.occupancy
    return {
        "device": report.device_name,
        "kernel": report.kernel_name,
        "total_cycles": _num(report.total_cycles),
        "time_s": _num(report.time_s),
        "mpoints_per_s": _num(report.mpoints_per_s),
        "gflops": _num(report.gflops),
        "load_efficiency": _num(report.load_efficiency),
        "bandwidth_gbs": _num(report.bandwidth_gbs),
        "stages": report.stages,
        "active_blocks": report.active_blocks,
        "blocks": report.blocks,
        "occupancy": {
            "active_blocks": occ.active_blocks,
            "warps_per_block": occ.warps_per_block,
            "active_warps": occ.active_warps,
            "occupancy": _num(occ.occupancy),
            "limiter": occ.limiter,
            "regs_per_block": occ.regs_per_block,
            "smem_per_block": occ.smem_per_block,
        },
        "breakdown": {k: _num(v) for k, v in report.breakdown.items()},
        "counters": (
            {k: _num(v) for k, v in report.counters.as_dict().items()}
            if report.counters is not None
            else None
        ),
        "meta": {k: repr(v) for k, v in sorted(report.meta.items())},
    }


def check_identity(baseline: str) -> tuple[bool, str]:
    """Resimulate every baseline record through both paths; compare exactly.

    Returns ``(ok, summary)``; the summary carries the per-path digests
    so CI logs show *what* diverged, not just that something did.
    """
    import hashlib
    import json

    from repro.gpusim.executor import simulate
    from repro.obs.regress import plan_for_record
    from repro.obs.telemetry import load_profile

    records = load_profile(baseline)
    engines: dict[str, BatchEngine] = {}
    scalar_payloads: list[dict[str, Any]] = []
    batch_payloads: list[dict[str, Any]] = []
    mismatches: list[str] = []
    classes_seen: set[BlockClass] = set()
    for record in records:
        plan = plan_for_record(record)
        dev = get_device(record.device)
        engine = engines.setdefault(record.device, BatchEngine(dev))
        scalar_report = simulate(plan, dev, record.grid)
        batch_result = batch_reports([(plan, record.grid)], dev, engine=engine)[0]
        if isinstance(batch_result, Exception):
            mismatches.append(
                f"{record.kernel} on {record.device}: batch refused a "
                f"launchable record ({batch_result})"
            )
            continue
        classes_seen.add(
            BlockClass.of(
                plan.block_workload(dev, record.grid),
                plan.grid_workload(dev, record.grid),
            )
        )
        sp = report_payload(scalar_report)
        bp = report_payload(batch_result)
        scalar_payloads.append(sp)
        batch_payloads.append(bp)
        if sp != bp:
            diffs = [
                key for key in sp
                if sp[key] != bp[key]
            ]
            mismatches.append(
                f"{record.kernel} on {record.device} [{record.source}]: "
                f"diverged in {', '.join(diffs)}"
            )

    def digest(payloads: list[dict[str, Any]]) -> str:
        blob = json.dumps(payloads, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    s_dig, b_dig = digest(scalar_payloads), digest(batch_payloads)
    ok = not mismatches and s_dig == b_dig
    lines = [
        f"batch-identity: {len(records)} record(s), "
        f"{len(classes_seen)} distinct block class(es)",
        f"  scalar digest {s_dig}",
        f"  batch  digest {b_dig}",
    ]
    lines.extend(f"  MISMATCH: {m}" for m in mismatches)
    lines.append("  identical: " + ("yes" if ok else "NO"))
    return ok, "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.gpusim.batch",
        description=(
            "Verify the batched engine is bit-identical to the scalar "
            "simulator over a recorded trajectory."
        ),
    )
    parser.add_argument(
        "--baseline", default="BENCH_profile.json",
        help="trajectory file to resimulate (default: BENCH_profile.json)",
    )
    args = parser.parse_args(argv)
    ok, summary = check_identity(args.baseline)
    print(summary)
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised by tools/check.py
    raise SystemExit(main())
