"""Top-level entry point: run a kernel plan on a simulated device.

The executor is the analogue of ``cudaLaunchKernel`` + ``nvprof`` in the
paper's test harness: it asks the kernel plan to compile itself into the
simulator's workload descriptors for a given device and grid, prices the
sweep with the timing model, and packages the profiler-style counters into
a :class:`~repro.gpusim.report.SimReport`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.gpusim.device import DeviceSpec, get_device
from repro.gpusim.report import SimReport
from repro.gpusim.timing import TimingParams, params_for, time_kernel
from repro.metrics.efficiency import mpoints_to_gflops
from repro.obs.counters import derive_counters
from repro.obs.tracer import current_tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.gpusim.workload import BlockWorkload
    from repro.kernels.base import KernelPlan


class DeviceExecutor:
    """Runs kernel plans on one simulated device.

    Parameters
    ----------
    device:
        A :class:`DeviceSpec` or registry name.
    params:
        Optional timing-parameter override (used by ablation benches, e.g.
        to switch the L2 halo-reuse effect off).
    """

    def __init__(
        self, device: DeviceSpec | str, params: TimingParams | None = None
    ) -> None:
        self.device = get_device(device) if isinstance(device, str) else device
        self.params = params

    def run(
        self,
        plan: "KernelPlan",
        grid_shape: tuple[int, int, int],
        block: "BlockWorkload | None" = None,
    ) -> SimReport:
        """Simulate one sweep of ``plan`` over ``grid_shape`` (LX, LY, LZ).

        ``block`` lets callers that already compiled the plan's block
        workload (e.g. the tuners' static pre-filter) reuse it instead of
        paying the traffic enumeration twice.
        """
        if block is None:
            block = plan.block_workload(self.device, grid_shape)
        grid = plan.grid_workload(self.device, grid_shape)
        timing = time_kernel(block, grid, self.device, self.params)

        time_s = timing.total_cycles / self.device.clock_hz
        # Credit what one pass actually produces: grid.total_points covers
        # kernels whose single sweep yields multiple logical time steps
        # (temporal blocking).
        mpoints = grid.total_points / time_s / 1e6
        gflops = mpoints_to_gflops(mpoints, block.flops_per_point)
        tp = self.params or params_for(self.device)
        counters = derive_counters(timing, block, grid, self.device, tp)
        bandwidth_gbs = counters["dram_bytes"] / time_s / 1e9

        report = SimReport(
            device_name=self.device.name,
            kernel_name=plan.name,
            total_cycles=timing.total_cycles,
            time_s=time_s,
            mpoints_per_s=mpoints,
            gflops=gflops,
            # Fig 9 metric — single-sourced from the counter derivation so
            # the headline and the gld_efficiency counter cannot disagree.
            load_efficiency=counters["gld_efficiency"],
            bandwidth_gbs=bandwidth_gbs,
            occupancy=timing.occupancy,
            stages=timing.stages,
            active_blocks=timing.occupancy.active_blocks,
            blocks=timing.blocks,
            breakdown={
                "mem_cycles_per_plane": timing.plane_cost.mem_cycles,
                "compute_cycles_per_plane": timing.plane_cost.compute_cycles,
                "exposed_cycles_per_plane": timing.plane_cost.exposed_cycles,
                "sync_cycles_per_plane": timing.plane_cost.sync_cycles,
                "spilled_regs": float(timing.spilled_regs),
                "bytes_per_block_plane": timing.effective_bytes_per_plane,
            },
            counters=counters,
            meta={
                "grid_shape": grid_shape,
                "block": plan.block_label(),
                "dtype": plan.dtype_name,
                "variant": plan.variant,
            },
        )
        tracer = current_tracer()
        if tracer is not None:
            from repro.obs.simtrace import emit_kernel_spans

            emit_kernel_spans(
                tracer, report, timing, block, grid, self.device, tp
            )
        return report


def simulate(
    plan: "KernelPlan",
    device: DeviceSpec | str,
    grid_shape: tuple[int, int, int],
    params: TimingParams | None = None,
) -> SimReport:
    """Convenience wrapper: simulate one kernel sweep."""
    return DeviceExecutor(device, params).run(plan, grid_shape)
