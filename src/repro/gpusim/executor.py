"""Top-level entry point: run a kernel plan on a simulated device.

The executor is the analogue of ``cudaLaunchKernel`` + ``nvprof`` in the
paper's test harness: it asks the kernel plan to compile itself into the
simulator's workload descriptors for a given device and grid, prices the
sweep with the timing model, and packages the profiler-style counters into
a :class:`~repro.gpusim.report.SimReport`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import FaultInjectedError, KernelHangError
from repro.gpusim.device import DeviceSpec, get_device
from repro.gpusim.faults import (
    KIND_ECC,
    KIND_HANG,
    KIND_LAUNCH_FAILURE,
    KIND_THROTTLE,
    STREAM_LAUNCH,
    FaultPlan,
    observe_fault,
)
from repro.gpusim.report import SimReport
from repro.gpusim.timing import TimingParams, params_for, time_kernel
from repro.metrics.efficiency import mpoints_to_gflops
from repro.obs.counters import derive_counters
from repro.obs.tracer import current_tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.gpusim.workload import BlockWorkload
    from repro.kernels.base import KernelPlan


class DeviceExecutor:
    """Runs kernel plans on one simulated device.

    Parameters
    ----------
    device:
        A :class:`DeviceSpec` or registry name.
    params:
        Optional timing-parameter override (used by ablation benches, e.g.
        to switch the L2 halo-reuse effect off).
    faults:
        Optional deterministic fault schedule
        (:class:`repro.gpusim.faults.FaultPlan`).  ``None`` (the default)
        leaves every launch untouched — the hooks below are single
        ``is None`` branches, so a fault-free executor is bit-identical
        to one built before the fault layer existed.
    watchdog_cycles:
        Per-launch simulated-cycle budget.  A launch exceeding it raises
        :class:`repro.errors.KernelHangError` — the per-trial timeout the
        resilient tuning session leans on.  Overrides the plan's own
        ``watchdog_cycles`` when both are set.
    fault_stream:
        Name of the fault-plan stream this executor draws launches from
        (default: the shared ``"launch"`` stream).  The parallel tuning
        engine gives every configuration its own stream, so the fault
        schedule a config sees is a pure function of the config — not of
        how trials happened to interleave across workers — which is what
        makes a fault storm reproducible at any ``--jobs`` count.
    """

    def __init__(
        self,
        device: DeviceSpec | str,
        params: TimingParams | None = None,
        faults: FaultPlan | None = None,
        watchdog_cycles: float | None = None,
        fault_stream: str = STREAM_LAUNCH,
    ) -> None:
        self.device = get_device(device) if isinstance(device, str) else device
        self.params = params
        self.faults = faults
        self.watchdog_cycles = watchdog_cycles
        self.fault_stream = fault_stream
        if watchdog_cycles is None and faults is not None:
            self.watchdog_cycles = faults.watchdog_cycles

    def run(
        self,
        plan: "KernelPlan",
        grid_shape: tuple[int, int, int],
        block: "BlockWorkload | None" = None,
    ) -> SimReport:
        """Simulate one sweep of ``plan`` over ``grid_shape`` (LX, LY, LZ).

        ``block`` lets callers that already compiled the plan's block
        workload (e.g. the tuners' static pre-filter) reuse it instead of
        paying the traffic enumeration twice.
        """
        tracer = current_tracer()
        event = None
        if self.faults is not None:
            event = self.faults.event_for(
                self.faults.next_index(self.fault_stream), self.fault_stream
            )
        if event is not None and event.kind == KIND_LAUNCH_FAILURE:
            observe_fault(tracer, event, kernel=plan.name)
            raise FaultInjectedError(
                f"injected launch failure for {plan.name} "
                f"(launch {event.index})",
                kind=event.kind, launch_index=event.index,
            )

        if block is None:
            block = plan.block_workload(self.device, grid_shape)
        grid = plan.grid_workload(self.device, grid_shape)
        timing = time_kernel(block, grid, self.device, self.params)

        if event is not None and event.kind == KIND_HANG:
            hang_cycles = timing.total_cycles * (
                self.faults.hang_multiplier if self.faults else 1.0
            )
            observe_fault(tracer, event, kernel=plan.name, cycles=hang_cycles)
            raise KernelHangError(
                f"injected hang for {plan.name}: {hang_cycles:.0f} simulated "
                f"cycles exceed the watchdog budget (launch {event.index})",
                kind=event.kind, cycles=hang_cycles,
                budget=self.watchdog_cycles, launch_index=event.index,
            )
        if (
            self.watchdog_cycles is not None
            and timing.total_cycles > self.watchdog_cycles
        ):
            raise KernelHangError(
                f"{plan.name} exceeded the per-trial cycle budget: "
                f"{timing.total_cycles:.0f} > {self.watchdog_cycles:.0f}",
                kind="watchdog", cycles=timing.total_cycles,
                budget=self.watchdog_cycles,
            )

        derate = 1.0
        faults_meta: list[dict] = []
        if event is not None and event.kind == KIND_THROTTLE:
            derate = event.factor
            observe_fault(tracer, event, kernel=plan.name, factor=event.factor)
            faults_meta.append({
                "kind": event.kind, "launch_index": event.index,
                "factor": round(event.factor, 6),
            })
        elif event is not None and event.kind == KIND_ECC:
            observe_fault(tracer, event, kernel=plan.name)
            faults_meta.append({"kind": event.kind, "launch_index": event.index})

        # A throttled launch completes, but the derated clock stretches its
        # wall time: every time-derived headline degrades by the factor
        # while the cycle counts (clock-independent) stay pristine.
        time_s = timing.total_cycles / self.device.clock_hz * derate
        # Credit what one pass actually produces: grid.total_points covers
        # kernels whose single sweep yields multiple logical time steps
        # (temporal blocking).
        mpoints = grid.total_points / time_s / 1e6
        gflops = mpoints_to_gflops(mpoints, block.flops_per_point)
        tp = self.params or params_for(self.device)
        counters = derive_counters(timing, block, grid, self.device, tp)
        bandwidth_gbs = counters["dram_bytes"] / time_s / 1e9

        report = SimReport(
            device_name=self.device.name,
            kernel_name=plan.name,
            total_cycles=timing.total_cycles,
            time_s=time_s,
            mpoints_per_s=mpoints,
            gflops=gflops,
            # Fig 9 metric — single-sourced from the counter derivation so
            # the headline and the gld_efficiency counter cannot disagree.
            load_efficiency=counters["gld_efficiency"],
            bandwidth_gbs=bandwidth_gbs,
            occupancy=timing.occupancy,
            stages=timing.stages,
            active_blocks=timing.occupancy.active_blocks,
            blocks=timing.blocks,
            breakdown={
                "mem_cycles_per_plane": timing.plane_cost.mem_cycles,
                "compute_cycles_per_plane": timing.plane_cost.compute_cycles,
                "exposed_cycles_per_plane": timing.plane_cost.exposed_cycles,
                "sync_cycles_per_plane": timing.plane_cost.sync_cycles,
                "spilled_regs": float(timing.spilled_regs),
                "bytes_per_block_plane": timing.effective_bytes_per_plane,
            },
            counters=counters,
            meta={
                "grid_shape": grid_shape,
                "block": plan.block_label(),
                "dtype": plan.dtype_name,
                "variant": plan.variant,
                **({"faults": faults_meta} if faults_meta else {}),
            },
        )
        if tracer is not None:
            from repro.obs.simtrace import emit_kernel_spans

            emit_kernel_spans(
                tracer, report, timing, block, grid, self.device, tp
            )
        return report


def simulate(
    plan: "KernelPlan",
    device: DeviceSpec | str,
    grid_shape: tuple[int, int, int],
    params: TimingParams | None = None,
) -> SimReport:
    """Convenience wrapper: simulate one kernel sweep."""
    return DeviceExecutor(device, params).run(plan, grid_shape)
