"""Simulation result records.

A :class:`SimReport` is what "running" a kernel configuration on the
simulated device returns — the analogue of one timed CUDA launch plus the
profiler counters the paper reports (MPoint/s, GFlop/s, global load
efficiency, occupancy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.gpusim.occupancy import OccupancyResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.obs.counters import CounterSet

#: The frozen component-name set of :attr:`SimReport.breakdown`.  This is
#: the single source of truth shared by the executor (which populates the
#: dict), the trace schema (``repro.obs.schema`` requires ``sim.kernel``
#: events to carry exactly these keys) and the reconciliation tests.
#: ``*_cycles_per_plane`` entries price one full-wave plane; the last two
#: are per-sweep diagnostics, not cycle components.
BREAKDOWN_KEYS: tuple[str, ...] = (
    "mem_cycles_per_plane",
    "compute_cycles_per_plane",
    "exposed_cycles_per_plane",
    "sync_cycles_per_plane",
    "spilled_regs",
    "bytes_per_block_plane",
)


@dataclass(frozen=True)
class SimReport:
    """Outcome of simulating one kernel sweep over the grid.

    Attributes
    ----------
    device_name / kernel_name:
        Identifies what ran where.
    total_cycles / time_s:
        Simulated duration of one full grid sweep.
    mpoints_per_s:
        Grid points computed per second / 1e6 — the paper's headline metric.
    gflops:
        Floating-point rate implied by the kernel's flops/point.
    load_efficiency:
        Requested/transferred for global loads (Fig 9 metric).
    bandwidth_gbs:
        Achieved DRAM bandwidth (bytes moved / time).
    occupancy:
        Resident-warp occupancy result for the configuration.
    stages / active_blocks / blocks:
        Wave-scheduling summary (Eqns (6), (8)).
    breakdown:
        Cycle breakdown per SM: memory / compute / latency-exposure /
        overhead components, for diagnostics and ablation benches.
    counters:
        The full hardware-counter analogue set
        (:class:`repro.obs.counters.CounterSet`), derived by the executor
        from the same timing/workload quantities the headline numbers
        come from.  ``None`` only for hand-built reports in tests.
    meta:
        Free-form extras (block config, grid shape, dtype...).
    """

    device_name: str
    kernel_name: str
    total_cycles: float
    time_s: float
    mpoints_per_s: float
    gflops: float
    load_efficiency: float
    bandwidth_gbs: float
    occupancy: OccupancyResult
    stages: int
    active_blocks: int
    blocks: int
    breakdown: dict[str, float] = field(default_factory=dict)
    counters: "CounterSet | None" = None
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        unknown = set(self.breakdown) - set(BREAKDOWN_KEYS)
        if unknown:
            raise ValueError(
                f"unknown breakdown component(s) {sorted(unknown)}; "
                f"the frozen key set is {BREAKDOWN_KEYS}"
            )

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.kernel_name} on {self.device_name}: "
            f"{self.mpoints_per_s:.1f} MPoint/s, {self.gflops:.1f} GFlop/s, "
            f"load-eff {self.load_efficiency:.1%}, occ {self.occupancy.occupancy:.0%}, "
            f"{self.stages} stage(s) x {self.active_blocks} blocks/SM"
        )
