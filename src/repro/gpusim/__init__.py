"""Transaction-level GPU performance simulator.

This package is the substitute for the real GeForce GTX580 / GTX680 /
Tesla C2070 hardware used in the paper's evaluation.  It models, at the
granularity the paper's optimizations operate on:

* global-memory coalescing — warp-level load/store instructions are mapped
  onto 128-byte transactions (:mod:`repro.gpusim.memory`);
* occupancy — the interaction between a kernel's register / shared-memory /
  thread footprint and per-SM limits (:mod:`repro.gpusim.occupancy`);
* instruction issue and arithmetic throughput, with per-device SP/DP ratios
  (:mod:`repro.gpusim.issue`, :mod:`repro.gpusim.timing`);
* shared-memory bank conflicts (:mod:`repro.gpusim.smem`);
* the wave ("stage") scheduler that places thread blocks onto SMs
  (:mod:`repro.gpusim.timing`), including per-block scheduling overhead and
  a small L2 halo-reuse effect — exactly the second-order effects the
  paper's analytical model (section VI) admits to ignoring.

The top-level entry point is :class:`repro.gpusim.executor.DeviceExecutor`.
"""

from repro.gpusim.device import DeviceSpec, get_device, list_devices, register_device
from repro.gpusim.arch import Generation, WARP_SIZE
from repro.gpusim.faults import FAULT_KINDS, FaultEvent, FaultPlan, flip_bit
from repro.gpusim.occupancy import OccupancyResult, compute_occupancy
from repro.gpusim.report import SimReport
from repro.gpusim.executor import DeviceExecutor, simulate
from repro.gpusim.batch import BatchEngine, BlockClass, batch_reports

__all__ = [
    "DeviceSpec",
    "get_device",
    "list_devices",
    "register_device",
    "Generation",
    "WARP_SIZE",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "flip_bit",
    "OccupancyResult",
    "compute_occupancy",
    "SimReport",
    "DeviceExecutor",
    "simulate",
    "BatchEngine",
    "BlockClass",
    "batch_reports",
]
