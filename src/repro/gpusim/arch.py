"""Per-generation architectural constants.

The paper evaluates on two NVIDIA generations: Fermi (GTX580, Tesla
C2070/C2050) and Kepler GK104 (GTX680), and section V-B extrapolates to
GT200 (GTX280/285).  The per-generation rules collected here are the ones
that change the *behaviour* of the kernels under study:

* the size of a global-memory transaction (the unit of coalescing),
* register-file and shared-memory allocation granularities,
* the shared-memory bank count and word size,
* scheduler issue width (warps issued per SM per cycle).

Quantitative per-card numbers (SM counts, clocks, bandwidths) live in
:mod:`repro.gpusim.device`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Number of threads in a warp — constant across every generation modeled.
WARP_SIZE: int = 32

#: Half-warp size; the paper's tuning constraint (i) requires TX to be a
#: multiple of this to help coalescing.
HALF_WARP: int = 16


class Generation(enum.Enum):
    """GPU micro-architecture generation."""

    GT200 = "gt200"
    FERMI = "fermi"
    KEPLER = "kepler"


@dataclass(frozen=True)
class ArchRules:
    """Generation-wide rules that govern coalescing and resource allocation.

    Attributes
    ----------
    transaction_bytes:
        Size of one global-memory transaction.  Fermi and Kepler fetch
        128-byte L1 cache lines for cached loads; GT200 coalesces into
        segments of up to 128 bytes as well (we model the 128B path).
    register_alloc_granularity:
        Registers are allocated to a warp in chunks of this many registers.
    smem_alloc_granularity:
        Shared memory is allocated per block in chunks of this many bytes.
    smem_banks / smem_bank_bytes:
        Bank structure of shared memory (32 banks x 4 bytes on Fermi and
        Kepler; 16 x 4 on GT200).
    issue_width:
        Independent warp instructions the SM's schedulers can issue per
        cycle (2 dual-issue schedulers on Fermi GF110, 4 on Kepler SMX).
    max_regs_per_thread:
        Hard per-thread register cap; above it the compiler spills to local
        memory, which the timing model charges as extra global traffic.
    """

    transaction_bytes: int
    register_alloc_granularity: int
    smem_alloc_granularity: int
    smem_banks: int
    smem_bank_bytes: int
    issue_width: int
    max_regs_per_thread: int


_RULES: dict[Generation, ArchRules] = {
    Generation.GT200: ArchRules(
        transaction_bytes=128,
        register_alloc_granularity=512,
        smem_alloc_granularity=512,
        smem_banks=16,
        smem_bank_bytes=4,
        issue_width=1,
        max_regs_per_thread=124,
    ),
    Generation.FERMI: ArchRules(
        transaction_bytes=128,
        register_alloc_granularity=64,
        smem_alloc_granularity=128,
        smem_banks=32,
        smem_bank_bytes=4,
        issue_width=2,
        max_regs_per_thread=63,
    ),
    Generation.KEPLER: ArchRules(
        transaction_bytes=128,
        register_alloc_granularity=256,
        smem_alloc_granularity=256,
        smem_banks=32,
        smem_bank_bytes=4,
        issue_width=4,
        max_regs_per_thread=63,  # GK104; GK110 raised this to 255
    ),
}


def rules_for(generation: Generation) -> ArchRules:
    """Return the :class:`ArchRules` for ``generation``."""
    return _RULES[generation]
