"""Device specifications and registry.

Each :class:`DeviceSpec` captures one physical card from the paper's
Table III, plus the cards referenced for prior-work comparison in section
V-B.  Peak arithmetic rates are *derived* (cores x 2 ops x clock) so the
table-reproduction tests can check our specs against the paper's published
numbers rather than trusting a transcription.

Bandwidths: the paper reports both the pin bandwidth (Table III) and the
*measured* achievable bandwidth (section IV-A: 161 / 150 / 117.5 GB/s).
The timing model uses the measured number — the paper's own model does the
same implicitly by being validated against measured runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import UnknownDeviceError
from repro.gpusim.arch import ArchRules, Generation, rules_for


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one GPU model.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"gtx580"``.
    generation:
        Micro-architecture generation (selects :class:`ArchRules`).
    sm_count:
        Number of streaming multiprocessors (SMX for Kepler).
    cores_per_sm:
        CUDA cores per SM; SP throughput is ``cores_per_sm * 2`` flop/cycle
        (FMA counts as two floating-point operations).
    shader_clock_mhz:
        Clock at which the cores execute (Fermi shader clock; Kepler core
        clock — Kepler dropped the 2x shader clock).
    dp_ratio:
        DP throughput as a fraction of SP throughput (1/8 GF110, 1/24
        GK104, 1/2 Tesla Fermi).
    pin_bandwidth_gbs / measured_bandwidth_gbs:
        Theoretical and empirically achievable global-memory bandwidth.
    registers_per_sm, smem_per_sm, max_threads_per_sm, max_warps_per_sm,
    max_blocks_per_sm, max_threads_per_block:
        Occupancy-limiting resources.
    dram_latency_cycles:
        Typical global-memory access latency in shader-clock cycles.
    l2_bytes:
        Total L2 cache size (used only for the small halo-reuse effect).
    """

    name: str
    generation: Generation
    sm_count: int
    cores_per_sm: int
    shader_clock_mhz: float
    dp_ratio: float
    pin_bandwidth_gbs: float
    measured_bandwidth_gbs: float
    registers_per_sm: int
    smem_per_sm: int
    max_threads_per_sm: int
    max_warps_per_sm: int
    max_blocks_per_sm: int
    max_threads_per_block: int
    dram_latency_cycles: int
    l2_bytes: int
    display_name: str = ""

    @property
    def rules(self) -> ArchRules:
        """Generation-wide architectural rules for this device."""
        return rules_for(self.generation)

    @property
    def clock_hz(self) -> float:
        """Shader clock in Hz."""
        return self.shader_clock_mhz * 1e6

    @property
    def cuda_cores(self) -> int:
        """Total CUDA cores on the card."""
        return self.sm_count * self.cores_per_sm

    @property
    def peak_sp_gflops(self) -> float:
        """Peak single-precision rate, GFlop/s (FMA = 2 flops)."""
        return self.cuda_cores * 2 * self.shader_clock_mhz / 1e3

    @property
    def peak_dp_gflops(self) -> float:
        """Peak double-precision rate, GFlop/s."""
        return self.peak_sp_gflops * self.dp_ratio

    @property
    def bandwidth_per_sm_bytes_per_cycle(self) -> float:
        """Measured bandwidth share of one SM, in bytes per shader cycle.

        This is the ``BW_SM = BW / SM`` quantity of the paper's Eqn (10),
        expressed per cycle so the timing model can stay in cycle units.
        """
        bytes_per_s = self.measured_bandwidth_gbs * 1e9
        return bytes_per_s / self.sm_count / self.clock_hz

    def sp_flops_per_sm_per_cycle(self) -> float:
        """SP floating-point operations one SM retires per cycle."""
        return self.cores_per_sm * 2.0

    def flops_per_sm_per_cycle(self, dtype_bytes: int) -> float:
        """Arithmetic throughput per SM per cycle for 4- or 8-byte floats."""
        if dtype_bytes == 4:
            return self.sp_flops_per_sm_per_cycle()
        if dtype_bytes == 8:
            return self.sp_flops_per_sm_per_cycle() * self.dp_ratio
        raise ValueError(f"unsupported element size {dtype_bytes}")


_REGISTRY: dict[str, DeviceSpec] = {}

#: Alternate spellings accepted by :func:`get_device`.
_ALIASES: dict[str, str] = {}


def register_device(spec: DeviceSpec, *aliases: str) -> DeviceSpec:
    """Add ``spec`` to the registry (and optional alias names); returns it."""
    _REGISTRY[spec.name] = spec
    for alias in aliases:
        _ALIASES[alias.lower()] = spec.name
    return spec


def get_device(name: str) -> DeviceSpec:
    """Look up a device by registry name or alias (case-insensitive)."""
    key = name.lower().replace(" ", "").replace("-", "").replace("_", "")
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownDeviceError(f"unknown device {name!r}; known: {known}") from None


def list_devices() -> list[str]:
    """Names of all registered devices, sorted."""
    return sorted(_REGISTRY)


GTX580 = register_device(
    DeviceSpec(
        name="gtx580",
        display_name="GeForce GTX580",
        generation=Generation.FERMI,
        sm_count=16,
        cores_per_sm=32,
        shader_clock_mhz=1544.0,
        dp_ratio=1 / 8,
        pin_bandwidth_gbs=192.4,
        measured_bandwidth_gbs=161.0,
        registers_per_sm=32768,
        smem_per_sm=48 * 1024,
        max_threads_per_sm=1536,
        max_warps_per_sm=48,
        max_blocks_per_sm=8,
        max_threads_per_block=1024,
        dram_latency_cycles=600,
        l2_bytes=768 * 1024,
    ),
    "geforcegtx580",
)

GTX680 = register_device(
    DeviceSpec(
        name="gtx680",
        display_name="GeForce GTX680",
        generation=Generation.KEPLER,
        sm_count=8,
        cores_per_sm=192,
        shader_clock_mhz=1006.0,
        dp_ratio=1 / 24,
        pin_bandwidth_gbs=192.3,
        measured_bandwidth_gbs=150.0,
        registers_per_sm=65536,
        smem_per_sm=48 * 1024,
        max_threads_per_sm=2048,
        max_warps_per_sm=64,
        max_blocks_per_sm=16,
        max_threads_per_block=1024,
        dram_latency_cycles=400,
        l2_bytes=512 * 1024,
    ),
    "geforcegtx680",
)

C2070 = register_device(
    DeviceSpec(
        name="c2070",
        display_name="Tesla C2070",
        generation=Generation.FERMI,
        sm_count=14,
        cores_per_sm=32,
        shader_clock_mhz=1150.0,
        dp_ratio=1 / 2,
        pin_bandwidth_gbs=144.0,
        measured_bandwidth_gbs=117.5,
        registers_per_sm=32768,
        smem_per_sm=48 * 1024,
        max_threads_per_sm=1536,
        max_warps_per_sm=48,
        max_blocks_per_sm=8,
        max_threads_per_block=1024,
        dram_latency_cycles=600,
        l2_bytes=768 * 1024,
    ),
    "teslac2070",
)

# Tesla C2050: identical to C2070 except DRAM capacity (section V-B);
# capacity does not enter the timing model, so the spec matches C2070.
C2050 = register_device(
    DeviceSpec(
        name="c2050",
        display_name="Tesla C2050",
        generation=Generation.FERMI,
        sm_count=14,
        cores_per_sm=32,
        shader_clock_mhz=1150.0,
        dp_ratio=1 / 2,
        pin_bandwidth_gbs=144.0,
        measured_bandwidth_gbs=117.5,
        registers_per_sm=32768,
        smem_per_sm=48 * 1024,
        max_threads_per_sm=1536,
        max_warps_per_sm=48,
        max_blocks_per_sm=8,
        max_threads_per_block=1024,
        dram_latency_cycles=600,
        l2_bytes=768 * 1024,
    ),
    "teslac2050",
)

# GT200-class cards, used only for the section V-B prior-work extrapolation.
GTX285 = register_device(
    DeviceSpec(
        name="gtx285",
        display_name="GeForce GTX285",
        generation=Generation.GT200,
        sm_count=30,
        cores_per_sm=8,
        shader_clock_mhz=1476.0,
        dp_ratio=1 / 12,
        pin_bandwidth_gbs=159.0,
        measured_bandwidth_gbs=127.0,
        registers_per_sm=16384,
        smem_per_sm=16 * 1024,
        max_threads_per_sm=1024,
        max_warps_per_sm=32,
        max_blocks_per_sm=8,
        max_threads_per_block=512,
        dram_latency_cycles=550,
        l2_bytes=0,
    ),
    "geforcegtx285",
)

#: The three cards of the paper's main evaluation (Table III order).
PAPER_DEVICES: tuple[DeviceSpec, ...] = (GTX580, GTX680, C2070)
