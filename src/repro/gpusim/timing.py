"""Cycle-level timing model of one kernel sweep.

This is the simulator's "ground truth" — a refinement of the paper's
analytical model (Eqns (6)-(14)) that additionally prices the three effects
section VI admits to ignoring (bank conflicts, block-scheduling overhead,
cache effects) plus the mechanisms the in-plane method actually exploits:

* **Bandwidth stream** — transferred bytes over the per-SM share of the
  measured DRAM bandwidth (``BW_SM`` of Eqn (10)).
* **Compute stream** — arithmetic cycles and instruction-issue cycles
  (global/shared loads, stores, bookkeeping) through the SM schedulers,
  shared-memory bank conflicts included.
* **Latency exposure** — per plane, every block issues its loads, hits a
  barrier, computes, hits a barrier.  The DRAM latency behind the first
  barrier is hidden by (a) other resident blocks and (b) memory-level
  parallelism: the bytes a warp keeps in flight per load instruction.
  Vector loads raise bytes-in-flight (the paper's section III-C-2
  motivation); split halo "phases" with tiny spans lower it and add
  straggler imbalance.
* **Wave scheduling** — blocks are placed in waves of ``SM * ActBlks``
  (Eqns (8)-(9)); the remainder wave runs at lower concurrency.  Each
  block pays a scheduling overhead.
* **L2 halo reuse** — a fraction of halo lines is found in L2 because the
  neighbouring block fetched them recently.
* **Register spilling** — configurations above the per-thread register cap
  run, but with extra local-memory traffic per plane.

All constants live in :class:`TimingParams` with per-generation overrides,
and were calibrated once against the paper's published absolute numbers
(see ``benchmarks/``) — the *mechanisms*, not the calibration, produce the
relative behaviour under study.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.gpusim.arch import WARP_SIZE, Generation
from repro.gpusim.device import DeviceSpec
from repro.gpusim.occupancy import OccupancyResult, compute_occupancy
from repro.gpusim.smem import dp_conflict_factor
from repro.gpusim.workload import BlockWorkload, GridWorkload
from repro.utils.maths import ceil_div, clamp


@dataclass(frozen=True)
class TimingParams:
    """Calibration constants of the timing model.

    Attributes
    ----------
    arith_efficiency:
        Fraction of peak instruction throughput the arithmetic pipeline
        sustains (dependency stalls, dual-issue imperfection).
    latency_exposure:
        Fraction of one DRAM latency exposed per plane by the
        load-barrier-compute structure when nothing hides it.
    phase_straggler:
        Additional exposed fraction per extra load phase (divergent halo
        loading makes some warps finish their loads later).
    block_overlap:
        How effectively each additional resident block hides another
        block's barrier stall (0 = not at all, 1 = perfectly).
    ilp_bonus:
        Contribution of per-thread ILP (register tiling) to latency
        hiding, per unit of extra ILP.
    outstanding_loads_per_warp:
        Load instructions one warp can keep in flight before stalling.
    sync_base_cycles / sync_per_warp_cycles:
        Barrier cost: fixed plus per-resident-warp component.
    sched_overhead_cycles:
        One-time cost of placing a block on an SM.
    l2_halo_reuse:
        Fraction of halo transactions served from L2 (0 when no L2).
    partition_camping:
        Service-cost multiplier for column-walking transactions whose
        power-of-two stride maps them all onto one DRAM partition
        (the Fermi-era partition-camping effect).
    spill_bytes_per_reg:
        Local-memory bytes moved per spilled register per thread per plane
        (after L1/L2 absorption).
    load_addressing_instructions:
        Address-arithmetic warp instructions issued per global load
        instruction — the overhead vector loads divide by the vector
        width (section III-C-2's memory-level-parallelism motivation).
    loop_overhead_instructions:
        Warp instructions of loop control per plane beyond the kernel's
        declared extras.
    """

    arith_efficiency: float = 0.70
    latency_exposure: float = 0.85
    phase_straggler: float = 0.50
    block_overlap: float = 0.55
    ilp_bonus: float = 0.30
    outstanding_loads_per_warp: float = 4.0
    sync_base_cycles: float = 15.0
    sync_per_warp_cycles: float = 1.0
    sched_overhead_cycles: float = 300.0
    l2_halo_reuse: float = 0.40
    partition_camping: float = 3.0
    spill_bytes_per_reg: float = 16.0
    load_addressing_instructions: float = 2.0
    loop_overhead_instructions: int = 12


#: Per-generation parameter overrides.  Kepler GK104's static scheduler
#: relies more on ILP and MLP and its 8 wide SMXs amortize serial per-plane
#: costs over fewer units, which is what made the paper's Kepler results
#: both the best-case speedup (1.96x) and the worst model error (~6%).
_GENERATION_PARAMS: dict[Generation, TimingParams] = {
    Generation.FERMI: TimingParams(),
    Generation.KEPLER: TimingParams(
        arith_efficiency=0.60,
        latency_exposure=1.1,
        phase_straggler=0.80,
        block_overlap=0.35,
        ilp_bonus=0.50,
        outstanding_loads_per_warp=3.0,
        sync_base_cycles=25.0,
        sched_overhead_cycles=350.0,
        l2_halo_reuse=0.30,
        partition_camping=2.6,
    ),
    Generation.GT200: TimingParams(
        arith_efficiency=0.60,
        latency_exposure=1.0,
        block_overlap=0.45,
        ilp_bonus=0.25,
        outstanding_loads_per_warp=2.0,
        l2_halo_reuse=0.0,
        partition_camping=3.5,
    ),
}


def params_for(device: DeviceSpec) -> TimingParams:
    """Timing parameters for the device's generation."""
    return _GENERATION_PARAMS[device.generation]


@dataclass(frozen=True)
class PlaneCost:
    """Per-SM cycle cost of advancing all resident blocks by one z-plane."""

    cycles: float
    mem_cycles: float
    compute_cycles: float
    exposed_cycles: float
    sync_cycles: float


@dataclass(frozen=True)
class IssueSlots:
    """Warp-instruction issue slots one block consumes per plane.

    This is the compute stream's instruction mix, exported so the profiler's
    counter derivations (:mod:`repro.obs.counters`) consume the *same*
    quantities the cycle model prices — the totals can never drift apart.

    ``smem`` includes bank-conflict replays (both the tile profile's residual
    conflicts and the architectural DP factor), so ``smem - smem_base`` is
    the replay-slot count.
    """

    global_load: float
    global_store: float
    smem: float
    smem_base: float
    arithmetic: float
    spill: float
    extra: float
    loop_overhead: float

    @property
    def bookkeeping(self) -> float:
        """Loop control and declared per-plane extras."""
        return self.extra + self.loop_overhead

    @property
    def total(self) -> float:
        """Slots per block per plane, summed exactly as the model sums them.

        The addition order matches the historical inline expression in
        :func:`_compute_cycles_per_block_plane` term for term, so refactoring
        the breakdown out changed no simulated cycle count.
        """
        return (
            self.global_load
            + self.global_store
            + self.smem
            + self.arithmetic
            + self.spill
            + self.extra
            + self.loop_overhead
        )


def issue_slots(
    workload: BlockWorkload,
    device: DeviceSpec,
    params: TimingParams | None = None,
    spilled_regs: int = 0,
) -> IssueSlots:
    """Instruction-issue breakdown of one block-plane (see :class:`IssueSlots`)."""
    params = params or params_for(device)
    conflict = dp_conflict_factor(workload.elem_bytes, device.rules)
    smem_base = float(
        workload.smem_profile.read_instructions
        + workload.smem_profile.write_instructions
    )
    arith_instr = workload.points_per_plane * workload.arith_instructions
    return IssueSlots(
        global_load=workload.memory.load_instructions
        * (1.0 + params.load_addressing_instructions),
        global_store=float(workload.memory.store_instructions),
        smem=workload.smem_profile.issue_cost() * conflict,
        smem_base=smem_base,
        arithmetic=arith_instr / WARP_SIZE,
        spill=(
            spilled_regs * workload.threads_per_block / WARP_SIZE * 2
            if spilled_regs
            else 0
        ),
        extra=float(workload.extra_instructions),
        loop_overhead=float(params.loop_overhead_instructions),
    )


@dataclass(frozen=True)
class TimingResult:
    """Full-sweep timing with its per-SM breakdown.

    ``plane_cost`` prices a full wave (``ActBlks`` resident blocks);
    ``rem_plane_cost`` prices the remainder wave.  Together with
    ``planes_per_block`` and ``sched_overhead_cycles`` they let the
    profiler (:mod:`repro.obs.simtrace`) reconstruct the exact per-wave
    timeline the total was accumulated from.
    """

    total_cycles: float
    occupancy: OccupancyResult
    stages: int
    blocks: int
    rem_blocks_per_sm: int
    plane_cost: PlaneCost
    rem_plane_cost: PlaneCost
    planes_per_block: int
    sched_overhead_cycles: float
    spilled_regs: int
    effective_bytes_per_plane: float


@dataclass(frozen=True)
class Wave:
    """One scheduling wave of a sweep, in device cycles since launch."""

    begin: float
    dur: float
    blocks_per_sm: int
    plane_cost: PlaneCost


def wave_geometry(timing: "TimingResult") -> list[Wave]:
    """Per-wave begin/duration/residency of one sweep.

    Mirrors :func:`time_kernel`'s accumulation exactly: ``stages - 1`` full
    waves followed by the remainder wave, whose duration is the residual of
    the total so the per-wave sum cannot drift from ``total_cycles``.  This
    is the one decomposition shared by the profiler's timeline
    reconstruction (:mod:`repro.obs.simtrace`) and the hardware-counter
    derivations (:mod:`repro.obs.counters`).
    """
    planes = timing.planes_per_block
    full_stage = (
        planes * timing.plane_cost.cycles
        + timing.occupancy.active_blocks * timing.sched_overhead_cycles
    )
    waves = [
        Wave(w * full_stage, full_stage, timing.occupancy.active_blocks,
             timing.plane_cost)
        for w in range(timing.stages - 1)
    ]
    last_begin = (timing.stages - 1) * full_stage
    waves.append(
        Wave(last_begin, timing.total_cycles - last_begin,
             timing.rem_blocks_per_sm, timing.rem_plane_cost)
    )
    return waves


def _effective_plane_bytes(
    workload: BlockWorkload, device: DeviceSpec, params: TimingParams, spilled_regs: int
) -> tuple[float, float]:
    """Bytes one block moves per plane after L2 reuse, plus spill traffic."""
    mem = workload.memory
    reuse = params.l2_halo_reuse if device.l2_bytes > 0 else 0.0
    halo_bytes = mem.halo_transferred_bytes * (1.0 - reuse)
    spill_bytes = (
        spilled_regs * workload.threads_per_block * params.spill_bytes_per_reg
    )
    # Partition camping: column-walking lines serialize on one DRAM
    # partition; their service cost is multiplied.  (L2 reuse is already
    # reflected in halo_bytes; camped traffic is halo traffic, so the
    # surcharge applies to the post-reuse fraction.)
    camping_surcharge = (
        mem.camped_bytes * (1.0 - reuse) * (params.partition_camping - 1.0)
    )
    total = (
        mem.interior_transferred_bytes
        + halo_bytes
        + mem.spill_transferred_bytes
        + mem.store_transferred_bytes
        + spill_bytes
        + camping_surcharge
    )
    return total, spill_bytes


def effective_load_bytes(
    workload: BlockWorkload, device: DeviceSpec, params: TimingParams | None = None
) -> float:
    """Effective DRAM service cost of one block's per-plane *loads*.

    This is the denominator of the paper's Fig 9 metric ("bandwidth
    requested as a percentage of the effective bandwidth used"): transferred
    lines after L2 halo reuse, plus the partition-camping serialization
    surcharge on column-walking traffic.
    """
    params = params or params_for(device)
    mem = workload.memory
    reuse = params.l2_halo_reuse if device.l2_bytes > 0 else 0.0
    return (
        mem.interior_transferred_bytes
        + mem.halo_transferred_bytes * (1.0 - reuse)
        + mem.spill_transferred_bytes
        + mem.camped_bytes * (1.0 - reuse) * (params.partition_camping - 1.0)
    )


def _compute_cycles_per_block_plane(
    workload: BlockWorkload,
    device: DeviceSpec,
    params: TimingParams,
    spilled_regs: int,
) -> float:
    """Compute-stream cycles one block consumes per plane if alone on the SM.

    Arithmetic is priced in *instructions* through the SP/DP lanes: the SM
    retires ``cores_per_sm`` SP lane-instructions per cycle (``* dp_ratio``
    for doubles), so an FMA and an ADD cost the same slot — which is why
    the in-plane method's higher flop count (Table II) costs almost nothing
    while its memory behaviour dominates.
    """
    arith_instr = workload.points_per_plane * workload.arith_instructions
    dtype_ratio = 1.0 if workload.elem_bytes == 4 else device.dp_ratio
    lanes_per_cycle = device.cores_per_sm * dtype_ratio
    arith_cycles = arith_instr / (lanes_per_cycle * params.arith_efficiency)

    slots = issue_slots(workload, device, params, spilled_regs)
    issue_cycles = slots.total / device.rules.issue_width
    return max(arith_cycles, issue_cycles)


def _latency_hiding(
    workload: BlockWorkload,
    device: DeviceSpec,
    params: TimingParams,
    occ: OccupancyResult,
) -> float:
    """Fraction of DRAM latency hidden, in [0, 1].

    Combines Little's-law memory-level parallelism (bytes each warp keeps in
    flight vs. the bytes the DRAM pipe needs in flight) with thread-level
    parallelism (resident warps) and per-thread ILP from register tiling.
    """
    mem = workload.memory
    if mem.load_instructions == 0:
        return 1.0
    bytes_per_load_instr = mem.load_transferred_bytes / mem.load_instructions
    loads_per_warp = mem.load_instructions / max(1, occ.warps_per_block)
    outstanding = min(params.outstanding_loads_per_warp, max(1.0, loads_per_warp))
    in_flight_per_warp = bytes_per_load_instr * outstanding

    pipe_bytes = (
        device.bandwidth_per_sm_bytes_per_cycle * device.dram_latency_cycles
    )
    warps_needed = pipe_bytes / max(1.0, in_flight_per_warp)
    capacity = occ.active_warps * (1.0 + params.ilp_bonus * (workload.ilp - 1.0))
    return clamp(capacity / max(1.0, warps_needed), 0.0, 1.0)


def _plane_cost(
    workload: BlockWorkload,
    device: DeviceSpec,
    params: TimingParams,
    occ: OccupancyResult,
    active_blocks: int,
    spilled_regs: int,
) -> PlaneCost:
    """Per-SM cycles to advance ``active_blocks`` resident blocks one plane."""
    bytes_per_block, _ = _effective_plane_bytes(workload, device, params, spilled_regs)
    mem_cycles = (
        active_blocks * bytes_per_block / device.bandwidth_per_sm_bytes_per_cycle
    )
    compute_cycles = active_blocks * _compute_cycles_per_block_plane(
        workload, device, params, spilled_regs
    )

    hide = _latency_hiding(workload, device, params, occ)
    phases = max(1, workload.memory.load_phases)
    raw_exposure = (
        device.dram_latency_cycles
        * params.latency_exposure
        * (1.0 + params.phase_straggler * (phases - 1))
    )
    # Other resident blocks fill the SM while this block sits at its
    # barrier; coverage improves harmonically with resident blocks (they
    # contend for the same memory pipe, so each extra block covers less
    # than the previous one), and resident-warp MLP covers part of the rest.
    block_hide = 1.0 / (1.0 + params.block_overlap * (active_blocks - 1))
    exposed = raw_exposure * block_hide * (1.0 - 0.5 * hide)

    sync_cycles = workload.syncs_per_plane * (
        params.sync_base_cycles + params.sync_per_warp_cycles * occ.warps_per_block
    )

    # Memory/compute overlap: a block's own barriers serialize its load and
    # compute phases, so overlap only comes from *other* resident blocks
    # being in the opposite phase (and from MLP keeping the pipe busy).
    # With one resident block the two streams strictly serialize; two
    # anti-phased blocks already overlap most of the shorter stream.
    overlap = hide * (1.0 - 1.0 / (2 * active_blocks - 1))
    total = (
        max(mem_cycles, compute_cycles)
        + (1.0 - overlap) * min(mem_cycles, compute_cycles)
        + exposed
        + sync_cycles
    )
    return PlaneCost(
        cycles=total,
        mem_cycles=mem_cycles,
        compute_cycles=compute_cycles,
        exposed_cycles=exposed,
        sync_cycles=sync_cycles,
    )


def time_kernel(
    workload: BlockWorkload,
    grid: GridWorkload,
    device: DeviceSpec,
    params: TimingParams | None = None,
) -> TimingResult:
    """Simulate one full sweep; returns total cycles and the breakdown.

    Raises :class:`repro.errors.ResourceLimitError` via the occupancy
    calculator when the configuration cannot launch at all.
    """
    params = params or params_for(device)

    cap = device.rules.max_regs_per_thread
    spilled = max(0, workload.regs_per_thread - cap)
    effective_regs = min(workload.regs_per_thread, cap)

    occ = compute_occupancy(
        device, workload.threads_per_block, effective_regs, workload.smem_bytes
    )
    act = occ.active_blocks

    stages = ceil_div(grid.blocks, device.sm_count * act)
    rem = ceil_div(grid.blocks - (stages - 1) * act * device.sm_count, device.sm_count)
    rem = max(1, min(rem, act))

    planes_per_block = grid.planes + workload.prologue_planes

    full_cost = _plane_cost(workload, device, params, occ, act, spilled)
    total = 0.0
    if stages > 1:
        stage_cycles = (
            planes_per_block * full_cost.cycles + act * params.sched_overhead_cycles
        )
        total += (stages - 1) * stage_cycles

    rem_cost = _plane_cost(workload, device, params, occ, rem, spilled)
    total += planes_per_block * rem_cost.cycles + rem * params.sched_overhead_cycles

    bytes_per_block, _ = _effective_plane_bytes(workload, device, params, spilled)
    return TimingResult(
        total_cycles=total,
        occupancy=occ,
        stages=stages,
        blocks=grid.blocks,
        rem_blocks_per_sm=rem,
        plane_cost=full_cost,
        rem_plane_cost=rem_cost,
        planes_per_block=planes_per_block,
        sched_overhead_cycles=params.sched_overhead_cycles,
        spilled_regs=spilled,
        effective_bytes_per_plane=bytes_per_block,
    )
