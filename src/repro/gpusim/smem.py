"""Shared-memory bank-conflict model.

Shared memory on Fermi/Kepler is divided into 32 banks of 4-byte words;
simultaneous accesses by lanes of a warp to different words in the same
bank serialize.  For the stencil kernels studied here the compute phase
reads in-plane neighbours from the shared tile with *consecutive lanes at
consecutive x*, which is conflict-free by construction — but 8-byte (DP)
accesses occupy two banks and halve effective throughput on Fermi, and a
tile pitch that is a multiple of the bank count produces conflicts for any
column-strided access.  The simulator includes the exact conflict-degree
computation both because kernels must *prove* (in tests) that their chosen
tile padding is conflict-free and because bank conflicts are the first of
the three error sources the paper's section VI model explicitly ignores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.arch import WARP_SIZE, ArchRules


def conflict_degree(
    stride_words: int,
    *,
    lanes: int = WARP_SIZE,
    banks: int = 32,
) -> int:
    """Maximum number of lanes hitting the same bank for a strided access.

    Lane ``i`` accesses word ``i * stride_words``; the conflict degree is
    the largest multiplicity over banks, i.e. the serialization factor of
    the access (1 = conflict-free).  Computed by direct counting so the
    subtle gcd cases (stride 0 = broadcast, stride sharing factors with the
    bank count) are handled exactly.
    """
    if lanes <= 0:
        raise ValueError("lanes must be positive")
    if banks <= 0:
        raise ValueError("banks must be positive")
    if stride_words == 0:
        return 1  # broadcast is served in one cycle
    hits: dict[int, set[int]] = {}
    for lane in range(lanes):
        word = lane * stride_words
        hits.setdefault(word % banks, set()).add(word)
    return max(len(words) for words in hits.values())


def padded_pitch_words(width_words: int, banks: int = 32) -> int:
    """Tile pitch (in words) padded to avoid column-access conflicts.

    Standard stencil-tile padding: if the natural pitch is a multiple of
    the bank count, add one word so lanes walking a column spread across
    banks.
    """
    if width_words <= 0:
        raise ValueError("width_words must be positive")
    return width_words + 1 if width_words % banks == 0 else width_words


@dataclass(frozen=True)
class SmemAccessProfile:
    """Shared-memory traffic of one block for one z-plane.

    Attributes
    ----------
    read_instructions / write_instructions:
        Warp-level shared-memory instruction counts.
    conflict_factor:
        Average serialization multiplier (>= 1.0) applied to those
        instructions by the timing model; includes the 2x Fermi DP penalty
        and any residual bank conflicts.
    """

    read_instructions: int
    write_instructions: int
    conflict_factor: float = 1.0

    def issue_cost(self) -> float:
        """Effective instruction slots consumed, conflicts included."""
        return (self.read_instructions + self.write_instructions) * self.conflict_factor


def dp_conflict_factor(elem_bytes: int, rules: ArchRules) -> float:
    """Serialization multiplier for the element size on this architecture.

    8-byte accesses span two 4-byte banks: Fermi serializes them into two
    transactions (factor 2.0); Kepler can run shared memory in 8-byte bank
    mode, so the penalty is smaller (factor 1.0 modeled).
    """
    if elem_bytes == 4:
        return 1.0
    if elem_bytes == 8:
        return 2.0 if rules.smem_banks * rules.smem_bank_bytes <= 128 and rules.issue_width < 4 else 1.0
    raise ValueError(f"unsupported element size {elem_bytes}")
