"""Deterministic fault injection for the simulated GPU.

Real tuning campaigns lose hours to hung kernels, ECC events and crashed
runs (the fragility that motivates the paper's section VI economy
argument); this module gives the simulator the same failure modes so the
resilient layers above it (:mod:`repro.tuning.robust`, the solver and
halo-exchange guards) can be exercised deterministically:

* **launch failures** — the launch dies before producing a result
  (``cudaErrorLaunchFailure``): :class:`repro.errors.FaultInjectedError`;
* **hangs** — the launch's simulated-cycle count blows past the watchdog
  budget: :class:`repro.errors.KernelHangError`;
* **thermal throttling** — the launch completes but the clock is derated,
  so the *measurement* is degraded (a silently-wrong tuning sample);
* **ECC events** — the launch completes but its computed planes are
  suspect; array-side helpers (:func:`flip_bit`, :meth:`FaultPlan.corrupt`)
  perturb real data for the numerics guards to catch.

Determinism is the core contract: a :class:`FaultPlan` is a pure function
of ``(seed, stream, index)`` — the same plan replayed against the same
sequence of launches injects the *identical* fault sequence, trial for
trial, across processes (no ``PYTHONHASHSEED`` dependence).  Each
consumer stream (device launches, halo exchanges, solver sweeps) has its
own monotonic index, advanced by :meth:`next_index`.

With no plan installed (``faults=None`` everywhere) every hook is a
no-op branch — zero perturbation of the simulated numbers, which is what
keeps the recorded ``BENCH_profile.json`` trajectory bit-identical.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.events import emit as emit_fault_event

#: Fault-taxonomy kind names (also the ``sim.fault.<kind>`` metric suffixes).
KIND_LAUNCH_FAILURE = "launch_failure"
KIND_HANG = "hang"
KIND_THROTTLE = "throttle"
KIND_ECC = "ecc"

FAULT_KINDS: tuple[str, ...] = (
    KIND_LAUNCH_FAILURE,
    KIND_HANG,
    KIND_THROTTLE,
    KIND_ECC,
)

#: Launch stream name used by :class:`repro.gpusim.executor.DeviceExecutor`.
STREAM_LAUNCH = "launch"
#: Exchange stream name used by :func:`repro.cluster.decompose.exchange_halos`.
STREAM_EXCHANGE = "exchange"
#: Sweep stream name used by :class:`repro.solvers.JacobiPoissonSolver`.
STREAM_SOLVER = "solver"


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: what, where in the stream, and how hard.

    ``factor`` carries the throttle derating (wall-clock multiplier > 1)
    for ``kind == "throttle"`` and is 1.0 otherwise.
    """

    kind: str
    index: int
    factor: float = 1.0

    def describe(self) -> str:
        if self.kind == KIND_THROTTLE:
            return f"{self.kind}[{self.index}] x{self.factor:.2f}"
        return f"{self.kind}[{self.index}]"


@dataclass
class FaultPlan:
    """Seeded, deterministic fault schedule.

    Rates are per-draw probabilities; at most one fault fires per draw
    (a single uniform sample is compared against the cumulative rates, so
    the rates are exact and must sum to <= 1).  ``burst`` limits injection
    to the first ``burst`` draws of every stream — a storm that passes —
    which is how the degradation tests model "a tier that keeps faulting
    while the campaign as a whole can still succeed".

    ``watchdog_cycles`` arms the executor's watchdog even for clean
    launches: any launch whose simulated cycles exceed the budget raises
    :class:`repro.errors.KernelHangError`, which is how per-trial timeout
    budgets are enforced on a simulator that never actually blocks.

    ``ecc_mode`` selects how :meth:`corrupt` perturbs arrays: ``"flip"``
    flips one mantissa/exponent bit (a single-bit ECC event), ``"nan"``
    overwrites one element with NaN (an uncorrectable double-bit error
    surfacing as garbage).
    """

    seed: int = 0
    launch_failure_rate: float = 0.0
    hang_rate: float = 0.0
    throttle_rate: float = 0.0
    ecc_rate: float = 0.0
    throttle_min: float = 1.2
    throttle_max: float = 2.5
    hang_multiplier: float = 64.0
    watchdog_cycles: float | None = None
    burst: int | None = None
    ecc_mode: str = "flip"
    _counters: dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        rates = (
            self.launch_failure_rate,
            self.hang_rate,
            self.throttle_rate,
            self.ecc_rate,
        )
        if any(r < 0.0 for r in rates) or sum(rates) > 1.0 + 1e-12:
            raise ConfigurationError(
                "fault rates must be non-negative and sum to <= 1, got "
                f"launch={rates[0]}, hang={rates[1]}, throttle={rates[2]}, "
                f"ecc={rates[3]}"
            )
        if not 1.0 <= self.throttle_min <= self.throttle_max:
            raise ConfigurationError(
                f"throttle factors must satisfy 1 <= min <= max, got "
                f"[{self.throttle_min}, {self.throttle_max}]"
            )
        if self.hang_multiplier < 1.0:
            raise ConfigurationError("hang_multiplier must be >= 1")
        if self.ecc_mode not in ("flip", "nan"):
            raise ConfigurationError(
                f"ecc_mode must be 'flip' or 'nan', got {self.ecc_mode!r}"
            )

    # -- determinism core --------------------------------------------------

    def _rng(self, stream: str, index: int) -> random.Random:
        """Process-independent RNG for one (seed, stream, index) cell."""
        mix = (
            (self.seed & 0xFFFFFFFF) * 0x9E3779B1
            + zlib.crc32(stream.encode("ascii"))
            + index * 0x85EBCA77
        ) & 0xFFFFFFFFFFFF
        return random.Random(mix)

    def next_index(self, stream: str = STREAM_LAUNCH) -> int:
        """Advance and return ``stream``'s monotonic draw index."""
        index = self._counters.get(stream, 0)
        self._counters[stream] = index + 1
        return index

    def reset(self) -> None:
        """Rewind every stream to index 0 (fresh replay of the plan)."""
        self._counters.clear()

    @property
    def fault_rate(self) -> float:
        """Total per-draw probability of any fault firing."""
        return (
            self.launch_failure_rate
            + self.hang_rate
            + self.throttle_rate
            + self.ecc_rate
        )

    # -- event schedule ----------------------------------------------------

    def event_for(self, index: int, stream: str = STREAM_LAUNCH) -> FaultEvent | None:
        """The fault injected at ``stream``'s draw ``index``, if any.

        Pure: does not advance any counter, so tests can enumerate the
        whole schedule up front and assert the executor saw exactly it.
        """
        if self.fault_rate == 0.0:
            return None
        if self.burst is not None and index >= self.burst:
            return None
        rng = self._rng(stream, index)
        u = rng.random()
        edge = self.launch_failure_rate
        if u < edge:
            return FaultEvent(KIND_LAUNCH_FAILURE, index)
        edge += self.hang_rate
        if u < edge:
            return FaultEvent(KIND_HANG, index)
        edge += self.throttle_rate
        if u < edge:
            factor = rng.uniform(self.throttle_min, self.throttle_max)
            return FaultEvent(KIND_THROTTLE, index, factor=factor)
        edge += self.ecc_rate
        if u < edge:
            return FaultEvent(KIND_ECC, index)
        return None

    def schedule(self, n: int, stream: str = STREAM_LAUNCH) -> list[FaultEvent | None]:
        """The first ``n`` draws of ``stream`` — the reproducibility witness."""
        return [self.event_for(i, stream) for i in range(n)]

    # -- array-side ECC injection -----------------------------------------

    def corrupt(self, array: np.ndarray, stream: str = STREAM_SOLVER) -> FaultEvent | None:
        """Maybe perturb ``array`` in place (one draw on ``stream``).

        Only ``ecc``-kind events touch the data; other kinds make no sense
        for an in-memory array and are reported to the caller untouched
        (a launch-shaped fault against a data stream is still *observed*,
        it just cannot corrupt anything here).
        """
        index = self.next_index(stream)
        event = self.event_for(index, stream)
        if event is None or event.kind != KIND_ECC:
            return event
        rng = self._rng(stream + ".payload", index)
        if self.ecc_mode == "nan":
            flat = array.reshape(-1)
            flat[rng.randrange(flat.size)] = np.nan
        else:
            flip_bit(array, rng)
        return event

    # -- CLI spec ----------------------------------------------------------

    _SPEC_KEYS = {
        "seed": ("seed", int),
        "launch": ("launch_failure_rate", float),
        "hang": ("hang_rate", float),
        "throttle": ("throttle_rate", float),
        "ecc": ("ecc_rate", float),
        "throttle_min": ("throttle_min", float),
        "throttle_max": ("throttle_max", float),
        "burst": ("burst", int),
        "watchdog": ("watchdog_cycles", float),
        "ecc_mode": ("ecc_mode", str),
    }

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a CLI spec like ``"seed=7,launch=0.1,hang=0.02"``.

        Keys: ``seed``, ``launch``, ``hang``, ``throttle``, ``ecc``
        (rates), ``throttle_min``/``throttle_max``, ``burst``,
        ``watchdog``, ``ecc_mode``.
        """
        kwargs: dict[str, Any] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in cls._SPEC_KEYS:
                known = ", ".join(sorted(cls._SPEC_KEYS))
                raise ConfigurationError(
                    f"bad fault spec entry {part!r}; expected key=value with "
                    f"key in {{{known}}}"
                )
            attr, cast = cls._SPEC_KEYS[key]
            try:
                kwargs[attr] = cast(value.strip())
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad fault spec value {part!r}: {exc}"
                ) from exc
        return cls(**kwargs)

    def describe(self) -> str:
        """One-line summary for logs and journal headers."""
        parts = [f"seed={self.seed}"]
        for label, rate in (
            ("launch", self.launch_failure_rate),
            ("hang", self.hang_rate),
            ("throttle", self.throttle_rate),
            ("ecc", self.ecc_rate),
        ):
            if rate:
                parts.append(f"{label}={rate:g}")
        if self.burst is not None:
            parts.append(f"burst={self.burst}")
        if self.watchdog_cycles is not None:
            parts.append(f"watchdog={self.watchdog_cycles:g}")
        return ",".join(parts)


# -- the cluster fault plane -------------------------------------------------

#: Cluster-plane stream names (the ``(seed, stream, entity, step)`` cells).
STREAM_CLUSTER_LINK = "cluster.link"
STREAM_CLUSTER_DEGRADE = "cluster.degrade"
STREAM_CLUSTER_GPU = "cluster.gpu"


@dataclass
class ClusterFaultPlan:
    """Seeded, deterministic fault schedule for a multi-GPU fleet.

    Where :class:`FaultPlan` models what one simulated device does to one
    launch, this plan models what a *fleet* does to a stepping campaign
    (:mod:`repro.cluster.resilient`):

    * **link corruption** — with ``link_corrupt_rate``, the halo planes
      received over one interface on one step are perturbed (bit flip or
      NaN, like an ECC event on the transfer path).  Corruption is drawn
      per ``(link, step, attempt)``: a retried exchange re-draws, so the
      retry ladder can succeed deterministically.
    * **link degradation** — with ``link_degrade_rate``, one interface's
      bandwidth is derated by a factor in ``[degrade_min, degrade_max]``
      for one step (thermal/PCIe flapping).  Purely a *pricing* fault:
      it never touches data, only the exchange time the cost model
      charges through :meth:`repro.cluster.multigpu.LinkSpec.degraded`.
    * **device dropout** — with ``dropout_rate``, a GPU dies at the start
      of one step and stays dead (``cudaErrorDevicesUnavailable``); the
      resilient engine quarantines it and re-decomposes the grid over
      the survivors.

    Every draw is a pure function of ``(seed, stream, entity, step)``
    (plus the attempt for corruption) — no mutable counters, so a
    campaign resumed from a checkpoint at step *k* replays steps
    *k+1..N* with the identical schedule an uninterrupted run saw.  All
    rates zero (or no plan installed) means zero perturbation.
    """

    seed: int = 0
    link_corrupt_rate: float = 0.0
    link_degrade_rate: float = 0.0
    dropout_rate: float = 0.0
    degrade_min: float = 2.0
    degrade_max: float = 8.0
    corrupt_mode: str = "flip"

    def __post_init__(self) -> None:
        rates = (self.link_corrupt_rate, self.link_degrade_rate, self.dropout_rate)
        if any(not 0.0 <= r <= 1.0 for r in rates):
            raise ConfigurationError(
                "cluster fault rates must be probabilities in [0, 1], got "
                f"corrupt={rates[0]}, degrade={rates[1]}, dropout={rates[2]}"
            )
        if not 1.0 <= self.degrade_min <= self.degrade_max:
            raise ConfigurationError(
                f"degrade factors must satisfy 1 <= min <= max, got "
                f"[{self.degrade_min}, {self.degrade_max}]"
            )
        if self.corrupt_mode not in ("flip", "nan"):
            raise ConfigurationError(
                f"corrupt_mode must be 'flip' or 'nan', got {self.corrupt_mode!r}"
            )

    @property
    def fault_rate(self) -> float:
        """Total per-draw probability mass (0 means the plan is inert)."""
        return self.link_corrupt_rate + self.link_degrade_rate + self.dropout_rate

    # -- determinism core --------------------------------------------------

    def _rng(self, stream: str, *cell: int) -> random.Random:
        """Process-independent RNG for one ``(seed, stream, *cell)`` draw.

        String seeding keeps the schedule independent of
        ``PYTHONHASHSEED``, mirroring :meth:`RetryPolicy.delay_s`.
        """
        key = ":".join(str(c) for c in cell)
        return random.Random(f"{self.seed}:{stream}:{key}")

    # -- the three fault families ------------------------------------------

    def gpu_dropout(self, gpu: int, step: int) -> bool:
        """Does GPU ``gpu`` (original fleet index) die at ``step``?

        Indexed by the GPU's *original* identity, not its current slab
        position, so re-decomposition never reshuffles the schedule.
        """
        if self.dropout_rate == 0.0:
            return False
        return self._rng(STREAM_CLUSTER_GPU, gpu, step).random() < self.dropout_rate

    def link_corrupt(self, link: int, step: int, attempt: int = 0) -> bool:
        """Is the transfer over interface ``link`` corrupt on this attempt?"""
        if self.link_corrupt_rate == 0.0:
            return False
        rng = self._rng(STREAM_CLUSTER_LINK, link, step, attempt)
        return rng.random() < self.link_corrupt_rate

    def corrupt_ghosts(
        self, array: np.ndarray, link: int, step: int, attempt: int = 0
    ) -> bool:
        """Maybe perturb the received ghost planes ``array`` in place.

        Returns whether corruption fired.  The payload draw is seeded
        separately from the schedule draw so the *where* of a bit flip
        cannot perturb the *whether* of later faults.
        """
        if not self.link_corrupt(link, step, attempt):
            return False
        rng = self._rng(STREAM_CLUSTER_LINK + ".payload", link, step, attempt)
        if self.corrupt_mode == "nan":
            flat = array.reshape(-1)
            flat[rng.randrange(flat.size)] = np.nan
        else:
            flip_bit(array, rng)
        return True

    def link_degrade_factor(self, link: int, step: int) -> float:
        """Bandwidth derating of interface ``link`` at ``step`` (1.0 = clean).

        Drawn per ``(link, step)`` — flapping, not a permanent derate —
        and independent of exchange retries, which only re-draw
        corruption.
        """
        if self.link_degrade_rate == 0.0:
            return 1.0
        rng = self._rng(STREAM_CLUSTER_DEGRADE, link, step)
        if rng.random() >= self.link_degrade_rate:
            return 1.0
        return rng.uniform(self.degrade_min, self.degrade_max)

    # -- CLI spec ----------------------------------------------------------

    _SPEC_KEYS = {
        "seed": ("seed", int),
        "corrupt": ("link_corrupt_rate", float),
        "degrade": ("link_degrade_rate", float),
        "dropout": ("dropout_rate", float),
        "degrade_min": ("degrade_min", float),
        "degrade_max": ("degrade_max", float),
        "corrupt_mode": ("corrupt_mode", str),
    }

    @classmethod
    def parse(cls, spec: str) -> "ClusterFaultPlan":
        """Build a plan from a CLI spec like ``"seed=7,dropout=0.05"``.

        Keys: ``seed``, ``corrupt``, ``degrade``, ``dropout`` (rates),
        ``degrade_min``/``degrade_max``, ``corrupt_mode``.
        """
        kwargs: dict[str, Any] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in cls._SPEC_KEYS:
                known = ", ".join(sorted(cls._SPEC_KEYS))
                raise ConfigurationError(
                    f"bad cluster fault spec entry {part!r}; expected "
                    f"key=value with key in {{{known}}}"
                )
            attr, cast = cls._SPEC_KEYS[key]
            try:
                kwargs[attr] = cast(value.strip())
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad cluster fault spec value {part!r}: {exc}"
                ) from exc
        return cls(**kwargs)

    def describe(self) -> str:
        """One-line summary for logs and checkpoint headers."""
        parts = [f"seed={self.seed}"]
        for label, rate in (
            ("corrupt", self.link_corrupt_rate),
            ("degrade", self.link_degrade_rate),
            ("dropout", self.dropout_rate),
        ):
            if rate:
                parts.append(f"{label}={rate:g}")
        return ",".join(parts)


def observe_fault(tracer: Any, event: FaultEvent, **args: Any) -> None:
    """Surface one injected fault in the obs layer (instant + counter),
    and re-emit it as a first-class ``fault.injected`` event.

    ``tracer`` is a :class:`repro.obs.tracer.Tracer` or ``None`` (no-op);
    typed as ``Any`` to keep this module import-light.  The event fires
    independently of the tracer, so a storm session's event stream is
    complete without tracing enabled — except during tuning measurement,
    where emission is suppressed and the search loop derives
    ``fault.observed`` events from the finished outcome instead
    (:func:`repro.tuning.evaluator.emit_trial_events`).
    """
    emit_fault_event("fault.injected", kind=event.kind, index=event.index)
    if tracer is None:
        return
    from repro.obs.schema import CAT_SIM_FAULT

    tracer.instant(
        f"fault.{event.kind}", CAT_SIM_FAULT,
        kind=event.kind, launch_index=event.index, **args,
    )
    tracer.metrics.counter(f"sim.fault.{event.kind}").inc()


def flip_bit(array: np.ndarray, rng: random.Random) -> tuple[int, int]:
    """Flip one random bit of one random element of ``array`` in place.

    The single-bit ECC-event model: the element keeps its type but its
    value silently changes (possibly into an Inf/NaN pattern for exponent
    bits).  Returns ``(flat_index, bit)`` for diagnostics.
    """
    if array.size == 0:
        raise ConfigurationError("cannot flip a bit of an empty array")
    uint = {4: np.uint32, 8: np.uint64}.get(array.dtype.itemsize)
    if uint is None:
        raise ConfigurationError(
            f"bit flips support 4/8-byte dtypes, got {array.dtype}"
        )
    flat = array.reshape(-1).view(uint)
    idx = rng.randrange(flat.size)
    bit = rng.randrange(array.dtype.itemsize * 8)
    flat[idx] ^= uint(1) << uint(bit)
    return idx, bit
