"""Trace-level validation of the analytic coalescing model.

The kernel workloads are priced from *analytic* per-region formulas
(transactions per row averaged over tile alignment phases).  This module
provides the slow, exact alternative: enumerate every warp instruction a
block issues for a region — lane by lane, byte address by byte address —
and count the distinct transaction lines the hardware would fetch.

It exists for verification, not speed: property tests drive both paths
over randomized geometries and require exact agreement, which turns the
analytic accounting from "plausible arithmetic" into a checked invariant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpusim.arch import WARP_SIZE
from repro.kernels.layout import GridLayout


@dataclass(frozen=True)
class TracedInstruction:
    """One enumerated warp load/store instruction.

    Attributes
    ----------
    lane_addresses:
        Byte address of each active lane's first byte (lanes may carry
        ``vec_width`` consecutive elements each).
    vec_width / elem_bytes:
        Per-lane access shape.
    """

    lane_addresses: tuple[int, ...]
    vec_width: int
    elem_bytes: int

    def lines_touched(self, line_bytes: int = 128) -> set[int]:
        """Distinct transaction lines this instruction drags in."""
        lines: set[int] = set()
        span = self.vec_width * self.elem_bytes
        for addr in self.lane_addresses:
            first = addr // line_bytes
            last = (addr + span - 1) // line_bytes
            lines.update(range(first, last + 1))
        return lines

    def useful_bytes(self) -> int:
        """Bytes the active lanes actually request."""
        return len(self.lane_addresses) * self.vec_width * self.elem_bytes


@dataclass
class TraceResult:
    """Aggregate of an enumerated access stream."""

    instructions: int = 0
    transactions: int = 0
    requested_bytes: int = 0

    @property
    def transferred_bytes(self) -> int:
        return self.transactions * 128

    def add(self, instr: TracedInstruction, line_bytes: int = 128) -> None:
        self.instructions += 1
        self.transactions += len(instr.lines_touched(line_bytes))
        self.requested_bytes += instr.useful_bytes()


def trace_row_region(
    layout: GridLayout,
    *,
    x_start_rel: int,
    width_elems: int,
    rows: int,
    tile_origin_x: int,
    vec_width: int = 1,
) -> TraceResult:
    """Enumerate the warp instructions for one tile's row region.

    Mirrors the warp-based assignment of section III-C-2: each row is
    covered left to right in chunks of ``WARP_SIZE * vec_width`` elements;
    the final chunk runs with fewer active lanes.  Every row is enumerated
    at its true pitch-offset address.
    """
    result = TraceResult()
    elem = layout.elem_bytes
    for row in range(rows):
        row_base = (
            row * layout.pitch_bytes
            + (tile_origin_x + x_start_rel - layout.aligned_x) * elem
        )
        row_lines: set[int] = set()
        done = 0
        while done < width_elems:
            addrs = tuple(
                row_base + (done + lane * vec_width) * elem
                for lane in range(WARP_SIZE)
                if done + lane * vec_width < width_elems
            )
            instr = TracedInstruction(
                lane_addresses=addrs, vec_width=vec_width, elem_bytes=elem
            )
            result.instructions += 1
            result.requested_bytes += instr.useful_bytes()
            # A line touched by an earlier instruction of the same row is
            # L1-resident by the time the next instruction needs it: the
            # DRAM transaction count dedups within the row, exactly as the
            # analytic line_span over the whole segment assumes.
            row_lines |= instr.lines_touched(layout.line_bytes)
            done += WARP_SIZE * vec_width
        result.transactions += len(row_lines)
    return result


def trace_column_strip(
    layout: GridLayout,
    *,
    x_start_rel: int,
    width_elems: int,
    rows: int,
    tile_origin_x: int,
) -> TraceResult:
    """Enumerate the per-row predicated strip loads of the Fig 4 pattern:
    one instruction per row with ``width_elems`` active lanes."""
    result = TraceResult()
    elem = layout.elem_bytes
    for row in range(rows):
        row_base = (
            row * layout.pitch_bytes
            + (tile_origin_x + x_start_rel - layout.aligned_x) * elem
        )
        addrs = tuple(row_base + lane * elem for lane in range(width_elems))
        result.add(
            TracedInstruction(lane_addresses=addrs, vec_width=1, elem_bytes=elem),
            layout.line_bytes,
        )
    return result


def average_region_trace(
    layout: GridLayout,
    *,
    x_start_rel: int,
    width_elems: int,
    rows: int,
    tile_stride: int,
    vec_width: int = 1,
) -> tuple[float, float, float]:
    """(instructions, transactions, requested) per tile, averaged exactly
    over one full period of tile alignment phases — the quantity the
    analytic :func:`repro.kernels.loads.add_row_region` claims to compute.
    """
    stride_bytes = tile_stride * layout.elem_bytes
    period = layout.line_bytes // math.gcd(stride_bytes, layout.line_bytes)
    instr = tx = req = 0
    for i in range(period):
        res = trace_row_region(
            layout,
            x_start_rel=x_start_rel,
            width_elems=width_elems,
            rows=rows,
            tile_origin_x=i * tile_stride,
            vec_width=vec_width,
        )
        instr += res.instructions
        tx += res.transactions
        req += res.requested_bytes
    return instr / period, tx / period, req / period
