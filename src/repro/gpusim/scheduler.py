"""Event-driven block scheduler — the discrete alternative to Eqn (8).

The analytic timing model places thread blocks in uniform waves of
``SM * ActBlks`` (the paper's Eqns (8)-(9)).  Real hardware uses a greedy
work distributor: whenever an SM finishes a block it immediately receives
the next one, so waves blur and the tail of a grid drains more smoothly
than the wave model's all-or-nothing remainder stage.

This module simulates that distributor exactly — a priority queue of
(block completion time, SM) events — given the same per-block duration the
analytic model uses.  Tests cross-validate the two: for grids that divide
into whole waves they agree exactly, and for ragged grids the greedy
schedule is never slower (and bounded by one block duration of savings per
SM), which pins down the analytic model's tail error.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of one greedy schedule.

    Attributes
    ----------
    makespan:
        Cycles until the last block completes.
    per_sm_busy:
        Busy cycles per SM (load-balance diagnostic).
    blocks_per_sm:
        Blocks each SM executed.
    """

    makespan: float
    per_sm_busy: tuple[float, ...]
    blocks_per_sm: tuple[int, ...]
    slots_per_sm: int

    @property
    def utilization(self) -> float:
        """Mean busy fraction of all block slots over the makespan."""
        if self.makespan <= 0:
            return 1.0
        capacity = len(self.per_sm_busy) * self.slots_per_sm * self.makespan
        return sum(self.per_sm_busy) / capacity


def greedy_schedule(
    blocks: int,
    sm_count: int,
    slots_per_sm: int,
    block_cycles: float,
    sched_overhead_cycles: float = 0.0,
) -> ScheduleResult:
    """Greedily place ``blocks`` identical blocks on ``sm_count`` SMs.

    Each SM runs up to ``slots_per_sm`` blocks concurrently; a block takes
    ``block_cycles`` (its duration already reflects resource sharing at
    full residency — the same convention the analytic model uses) plus a
    dispatch overhead.  Blocks are handed out in order to the SM slot that
    frees first, exactly like the hardware's work distributor.
    """
    if blocks < 1 or sm_count < 1 or slots_per_sm < 1:
        raise ConfigurationError("blocks, sm_count and slots_per_sm must be >= 1")
    if block_cycles <= 0:
        raise ConfigurationError("block_cycles must be positive")

    duration = block_cycles + sched_overhead_cycles
    # Event queue of (free_time, sm_index) for every slot.
    slots: list[tuple[float, int]] = [
        (0.0, sm) for sm in range(sm_count) for _ in range(slots_per_sm)
    ]
    heapq.heapify(slots)

    busy = [0.0] * sm_count
    counts = [0] * sm_count
    makespan = 0.0
    for _ in range(blocks):
        free_at, sm = heapq.heappop(slots)
        done = free_at + duration
        busy[sm] += duration
        counts[sm] += 1
        makespan = max(makespan, done)
        heapq.heappush(slots, (done, sm))

    return ScheduleResult(
        makespan=makespan,
        per_sm_busy=tuple(busy),
        blocks_per_sm=tuple(counts),
        slots_per_sm=slots_per_sm,
    )


def wave_schedule_makespan(
    blocks: int,
    sm_count: int,
    slots_per_sm: int,
    block_cycles: float,
    sched_overhead_cycles: float = 0.0,
) -> float:
    """The analytic Eqns (8)-(9) makespan for the same inputs.

    ``Stages = ceil(Blks / (SM * ActBlks))`` full waves, each lasting one
    block duration.
    """
    if blocks < 1 or sm_count < 1 or slots_per_sm < 1:
        raise ConfigurationError("blocks, sm_count and slots_per_sm must be >= 1")
    duration = block_cycles + sched_overhead_cycles
    stages = -(-blocks // (sm_count * slots_per_sm))
    return stages * duration
