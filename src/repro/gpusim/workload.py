"""Workload descriptors — the contract between kernels and the simulator.

A kernel plan (in :mod:`repro.kernels`) compiles itself into a
:class:`BlockWorkload` (what one thread block does per z-plane) plus a
:class:`GridWorkload` (how many blocks / planes / points one sweep covers).
The timing model consumes only these records, so the simulator never needs
to know what a "stencil" is — it prices memory transactions, instructions
and synchronization like the hardware would for any kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.memory import MemoryStats
from repro.gpusim.smem import SmemAccessProfile


@dataclass(frozen=True)
class BlockWorkload:
    """Per-block, per-z-plane workload of a kernel configuration.

    Attributes
    ----------
    threads_per_block:
        Launch block size (TX x TY).
    regs_per_thread:
        Estimated register footprint; may exceed the architectural cap, in
        which case the executor models spilling.
    smem_bytes:
        Shared-memory buffer per block (tile + padding).
    elem_bytes:
        4 (SP) or 8 (DP).
    points_per_plane:
        Output elements produced per block per plane (TX*RX x TY*RY).
    flops_per_point:
        Floating-point operations per output element (Table I / II column).
        Used for GFlop/s *reporting*; timing prices instructions.
    arith_instructions_per_point:
        Arithmetic instructions per output element.  This is what the SM's
        pipelines actually execute: an FMA is one instruction carrying two
        flops, so the in-plane method's 8r+1 flops and the forward method's
        7r+1 flops both lower to ~6r+1 instructions — the reason the extra
        in-plane flops are nearly free on hardware (section III-C).  When
        omitted, derived as ``flops / 1.5``.
    memory:
        Global-memory traffic per plane (loads + stores), from the
        coalescing model.
    smem_profile:
        Shared-memory instruction counts per plane.
    extra_instructions:
        Warp-level bookkeeping instructions per plane (index arithmetic,
        loop control, register-queue shifting).
    ilp:
        Independent instruction streams per thread; register tiling gives
        roughly RX*RY independent accumulation chains.
    prologue_planes:
        Planes that must be streamed in before the first output plane can
        be written (r for the in-plane pipeline, 2r+1 for forward-plane).
    syncs_per_plane:
        ``__syncthreads()`` barriers per plane (typically 2).
    """

    threads_per_block: int
    regs_per_thread: int
    smem_bytes: int
    elem_bytes: int
    points_per_plane: int
    flops_per_point: float
    memory: MemoryStats
    smem_profile: SmemAccessProfile
    arith_instructions_per_point: float | None = None
    extra_instructions: int = 0
    ilp: float = 1.0
    prologue_planes: int = 0
    syncs_per_plane: int = 2

    def __post_init__(self) -> None:
        if self.threads_per_block <= 0:
            raise ValueError("threads_per_block must be positive")
        if self.points_per_plane <= 0:
            raise ValueError("points_per_plane must be positive")
        if self.elem_bytes not in (4, 8):
            raise ValueError("elem_bytes must be 4 or 8")
        if self.ilp < 1.0:
            raise ValueError("ilp must be >= 1")

    @property
    def arith_instructions(self) -> float:
        """Arithmetic instructions per point (derived when not declared)."""
        if self.arith_instructions_per_point is not None:
            return self.arith_instructions_per_point
        return self.flops_per_point / 1.5


@dataclass(frozen=True)
class GridWorkload:
    """One sweep of the kernel over the full grid.

    Attributes
    ----------
    blocks:
        Thread blocks launched (Eqn (6): ceil over both tiled dimensions).
    planes:
        Output z-planes each block traverses (LZ - 2r interior planes).
    total_points:
        Output points of one sweep, used for the MPoint/s metric.  The
        paper normalizes by the full grid volume LX*LY*LZ; we do the same
        (boundary planes are copied, not computed, on both sides).
    """

    blocks: int
    planes: int
    total_points: int

    def __post_init__(self) -> None:
        if self.blocks <= 0 or self.planes <= 0 or self.total_points <= 0:
            raise ValueError("grid workload must be non-empty")
