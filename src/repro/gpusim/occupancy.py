"""Occupancy calculation — the paper's Eqn (7) with hardware granularities.

Given a kernel's per-thread register use, per-block shared-memory use and
block size, compute how many blocks can be resident on one SM at once.
The paper's model takes

    ActBlks = min( Reg/K_R, Smem/K_S, Warp_SM/Warp_Blk, Blk_SM )     (7)

We implement the same minimum but apply the real allocation granularities
(registers are handed out per warp in fixed chunks, shared memory per block
in fixed chunks), which is how the CUDA occupancy calculator works and is
one of the places a naive application of Eqn (7) deviates slightly from
hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ResourceLimitError
from repro.gpusim.arch import WARP_SIZE
from repro.gpusim.device import DeviceSpec
from repro.utils.maths import ceil_div, round_up


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of placing one kernel configuration on an SM.

    Attributes
    ----------
    active_blocks:
        Blocks resident per SM (``ActBlks`` in the paper).
    warps_per_block / active_warps:
        Warps in one block and total resident warps per SM.
    occupancy:
        ``active_warps / max_warps_per_sm`` in [0, 1].
    limiter:
        Which resource bound the result: ``"registers"``, ``"smem"``,
        ``"warps"`` or ``"blocks"``.
    regs_per_block / smem_per_block:
        Granularity-rounded footprints actually charged by the allocator.
    """

    active_blocks: int
    warps_per_block: int
    active_warps: int
    occupancy: float
    limiter: str
    regs_per_block: int
    smem_per_block: int


def compute_occupancy(
    device: DeviceSpec,
    threads_per_block: int,
    regs_per_thread: int,
    smem_bytes_per_block: int,
) -> OccupancyResult:
    """Compute resident blocks per SM for a kernel configuration.

    Raises
    ------
    ResourceLimitError
        If the configuration cannot be launched at all: zero threads, more
        threads per block than the device allows, a single block exceeding
        the register file, or a shared-memory buffer over the SM limit.
    """
    if threads_per_block <= 0:
        raise ResourceLimitError("threads_per_block must be positive")
    if threads_per_block > device.max_threads_per_block:
        raise ResourceLimitError(
            f"{threads_per_block} threads/block exceeds device limit "
            f"{device.max_threads_per_block} on {device.name}"
        )
    if regs_per_thread < 0 or smem_bytes_per_block < 0:
        raise ResourceLimitError("resource footprints must be non-negative")

    rules = device.rules
    warps_per_block = ceil_div(threads_per_block, WARP_SIZE)

    # Register allocation is per warp, rounded to the allocation chunk.
    regs_per_warp = round_up(
        regs_per_thread * WARP_SIZE, rules.register_alloc_granularity
    )
    regs_per_block = regs_per_warp * warps_per_block

    smem_per_block = (
        round_up(smem_bytes_per_block, rules.smem_alloc_granularity)
        if smem_bytes_per_block
        else 0
    )

    if regs_per_block > device.registers_per_sm:
        raise ResourceLimitError(
            f"one block needs {regs_per_block} registers, SM has "
            f"{device.registers_per_sm} on {device.name}"
        )
    if smem_per_block > device.smem_per_sm:
        raise ResourceLimitError(
            f"one block needs {smem_per_block}B shared memory, SM has "
            f"{device.smem_per_sm}B on {device.name}"
        )

    limits = {
        "registers": (
            device.registers_per_sm // regs_per_block
            if regs_per_block
            else device.max_blocks_per_sm
        ),
        "smem": (
            device.smem_per_sm // smem_per_block
            if smem_per_block
            else device.max_blocks_per_sm
        ),
        "warps": device.max_warps_per_sm // warps_per_block,
        "blocks": device.max_blocks_per_sm,
    }
    limiter, active_blocks = min(limits.items(), key=lambda kv: kv[1])
    if active_blocks < 1:
        # Thread limit per SM can bind when warps_per_block > max_warps_per_sm,
        # but that implies threads_per_block > max_threads_per_block, already
        # rejected above; reaching here means warps limit rounded to zero.
        raise ResourceLimitError(
            f"no block of {threads_per_block} threads fits an SM on {device.name}"
        )

    active_warps = active_blocks * warps_per_block
    return OccupancyResult(
        active_blocks=active_blocks,
        warps_per_block=warps_per_block,
        active_warps=active_warps,
        occupancy=active_warps / device.max_warps_per_sm,
        limiter=limiter,
        regs_per_block=regs_per_block,
        smem_per_block=smem_per_block,
    )
