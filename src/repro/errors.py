"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the reproduction stack with one handler while
still discriminating configuration problems from resource-limit violations.

Errors optionally carry a ``rule`` id from the static-analysis catalog
(:mod:`repro.analysis.rules`), so a failure raised eagerly at construction
time and the same condition reported lazily by ``repro lint`` identify the
defect with the same stable name.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    ``rule`` names the static-analysis rule (e.g. ``"RES-REGS"``) that
    diagnoses the same condition, when one exists.
    """

    def __init__(self, *args: object, rule: str | None = None) -> None:
        super().__init__(*args)
        self.rule = rule


class ConfigurationError(ReproError):
    """A kernel/tuning configuration is malformed or internally inconsistent.

    Examples: a thread-block x-dimension that is not a multiple of a
    half-warp, a register-tile factor of zero, or a grid that is not
    divisible by the effective tile as required by the paper's search
    constraint (iv).
    """


class ResourceLimitError(ReproError):
    """A kernel configuration exceeds a hard device limit.

    Raised when a configuration cannot be *launched at all* (e.g. more
    threads per block than the device supports, or a shared-memory buffer
    larger than the per-SM shared memory).  Configurations that merely
    reduce occupancy do not raise; they simply run slower.
    """


class UnknownDeviceError(ReproError):
    """Requested device name is not present in the device registry."""


class StencilDefinitionError(ReproError):
    """A stencil specification or expression is invalid.

    Examples: an even radius requested via an odd order, a tap referencing
    a grid index that does not exist, or coefficient counts that do not
    match the declared radius.
    """


class GridShapeError(ReproError):
    """An input grid is too small for the stencil extent or mis-shaped."""


class TuningError(ReproError):
    """Auto-tuning failed, e.g. an empty feasible parameter space."""


class FaultInjectedError(ReproError):
    """A simulated launch was killed by an injected fault.

    The deterministic fault layer (:mod:`repro.gpusim.faults`) raises this
    for kernel-launch failures — the analogue of ``cudaErrorLaunchFailure``
    on real hardware.  ``kind`` names the fault taxonomy entry and
    ``launch_index`` the position in the plan's launch stream, so a retry
    harness can log exactly which injected event it survived.
    """

    def __init__(
        self,
        *args: object,
        kind: str = "launch_failure",
        launch_index: int = -1,
        rule: str | None = None,
    ) -> None:
        super().__init__(*args, rule=rule)
        self.kind = kind
        self.launch_index = launch_index


class KernelHangError(ReproError):
    """A simulated launch exceeded its cycle budget (watchdog timeout).

    Raised both for injected hangs (``kind="hang"``) and for genuine
    watchdog trips — a configuration whose clean simulated runtime exceeds
    the per-trial cycle budget (``kind="watchdog"``).
    """

    def __init__(
        self,
        *args: object,
        kind: str = "hang",
        cycles: float = 0.0,
        budget: float | None = None,
        launch_index: int = -1,
        rule: str | None = None,
    ) -> None:
        super().__init__(*args, rule=rule)
        self.kind = kind
        self.cycles = cycles
        self.budget = budget
        self.launch_index = launch_index


class HaloExchangeError(ReproError):
    """A ghost-plane exchange failed its integrity validation.

    Raised by :func:`repro.cluster.decompose.exchange_halos` when a
    received ghost plane does not match the neighbour's source interior
    (transfer corruption) or contains non-finite values (corruption that
    happened upstream, in the computed planes themselves).
    """


class JournalError(ReproError):
    """A tuning-trial journal cannot be used for checkpoint/resume.

    Examples: resuming a journal whose header names a different tuning
    session, a journal whose header line is unreadable, or ``--resume``
    against a path that does not exist.
    """


class ClusterError(ReproError):
    """A multi-GPU campaign cannot continue on the surviving fleet.

    Raised by :class:`repro.cluster.resilient.ResilientClusterStencil`
    when the recovery ladder is exhausted: every GPU has been
    quarantined (or fewer than ``min_gpus`` survive), or a halo exchange
    stayed corrupt through every retry.  Maps to ``repro cluster`` exit
    code 1 — the fleet, not the request, is at fault.
    """


class CheckpointError(ReproError):
    """A cluster grid checkpoint cannot be used for resume.

    Examples: resuming from a path that does not exist, a header that is
    unreadable or names a different campaign session, a payload shorter
    than the header promises, or a payload whose SHA-256 does not match
    the header (torn or corrupted write).  Maps to ``repro cluster``
    exit code 2, alongside bad ``--faults`` specs.
    """
