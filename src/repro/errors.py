"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the reproduction stack with one handler while
still discriminating configuration problems from resource-limit violations.

Errors optionally carry a ``rule`` id from the static-analysis catalog
(:mod:`repro.analysis.rules`), so a failure raised eagerly at construction
time and the same condition reported lazily by ``repro lint`` identify the
defect with the same stable name.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    ``rule`` names the static-analysis rule (e.g. ``"RES-REGS"``) that
    diagnoses the same condition, when one exists.
    """

    def __init__(self, *args: object, rule: str | None = None) -> None:
        super().__init__(*args)
        self.rule = rule


class ConfigurationError(ReproError):
    """A kernel/tuning configuration is malformed or internally inconsistent.

    Examples: a thread-block x-dimension that is not a multiple of a
    half-warp, a register-tile factor of zero, or a grid that is not
    divisible by the effective tile as required by the paper's search
    constraint (iv).
    """


class ResourceLimitError(ReproError):
    """A kernel configuration exceeds a hard device limit.

    Raised when a configuration cannot be *launched at all* (e.g. more
    threads per block than the device supports, or a shared-memory buffer
    larger than the per-SM shared memory).  Configurations that merely
    reduce occupancy do not raise; they simply run slower.
    """


class UnknownDeviceError(ReproError):
    """Requested device name is not present in the device registry."""


class StencilDefinitionError(ReproError):
    """A stencil specification or expression is invalid.

    Examples: an even radius requested via an odd order, a tap referencing
    a grid index that does not exist, or coefficient counts that do not
    match the declared radius.
    """


class GridShapeError(ReproError):
    """An input grid is too small for the stencil extent or mis-shaped."""


class TuningError(ReproError):
    """Auto-tuning failed, e.g. an empty feasible parameter space."""
